package lossless

import (
	"fmt"

	"scdc/internal/huffman"
)

// The Huffman byte codec (tag 7) runs the kernelized canonical Huffman
// coder over the raw bytes — pure order-0 entropy coding, no match
// search. It exists because the lossless stage's usual input is the
// entropy-coded index stream, whose byte histogram is heavily skewed
// (short Huffman runs, small literals) but whose long-range structure
// is already squeezed out: on such buffers DEFLATE's entire gain is its
// literal Huffman table, so this codec reaches the same ratio at a
// fraction of the cost by skipping the match finder altogether. The
// size estimator prices it from the sampled byte entropy, letting Auto
// route match-free buffers here and match-rich ones to flate.
//
// The stream body is the huffman package's byte sub-format: a flat
// 256-byte code-length table shared by uvarint-directory shards, so one
// table purchase amortizes across shard bodies that encode and decode
// in parallel (huffman/bytes.go).

// huffCompressBody appends the Huffman byte stream for src to dst. The
// shard count derives from len(src) alone, so the stream is
// byte-identical for every worker count.
func huffCompressBody(dst, src []byte, workers int) []byte {
	return huffman.EncodeBytesTo(dst, src, ShardCount(len(src)), workers)
}

// huffDecompressInto decodes a Huffman byte stream into exactly dst.
func huffDecompressInto(dst, body []byte, workers int) error {
	if err := huffman.DecodeBytesInto(dst, body, workers); err != nil {
		return fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return nil
}

// huffDecompress decodes a Huffman byte stream into exactly n bytes.
func huffDecompress(body []byte, n, workers int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative length", ErrCorrupt)
	}
	// Every Huffman code spends at least one bit per symbol, so a lying
	// length header fails before the allocation it was hoping to force.
	if uint64(n) > 8*uint64(len(body)) {
		return nil, fmt.Errorf("%w: declared size %d impossible for %d input bytes", ErrCorrupt, n, len(body))
	}
	out := make([]byte, n)
	if err := huffDecompressInto(out, body, workers); err != nil {
		return nil, err
	}
	return out, nil
}
