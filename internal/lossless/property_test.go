package lossless

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// randomPayload mixes skewed runs (range-coder friendly) with uniform
// noise (worst case) at an arbitrary, often odd, length.
func randomPayload(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; {
		if rng.Intn(2) == 0 {
			run := 1 + rng.Intn(17)
			b := byte(rng.Intn(4))
			for ; run > 0 && i < n; run-- {
				out[i] = b
				i++
			}
		} else {
			out[i] = byte(rng.Intn(256))
			i++
		}
	}
	return out
}

// TestPropertyRangeRoundTrip: the adaptive range coder must round-trip
// arbitrary payloads at every awkward length — zero, one, odd tails, and
// just past its internal block boundaries.
func TestPropertyRangeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 2, 3, 5, 7, 63, 64, 65, 255, 256, 257, 1021, 4093}
	for i := 0; i < 40; i++ {
		lengths = append(lengths, rng.Intn(8192))
	}
	for _, n := range lengths {
		payload := randomPayload(rng, n)
		enc := rangeCompress(payload)
		dec, err := rangeDecompress(enc, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(dec, payload) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

// TestPropertyCodecRoundTrip runs the same length sweep through the
// tagged Compress/Decompress wrapper for every codec.
func TestPropertyCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range []Codec{None, Flate, LZ, Range, Huffman, Store, Auto} {
		for _, n := range []int{0, 1, 3, 64, 65, 1000, 4097} {
			payload := randomPayload(rng, n)
			enc, err := Compress(c, payload)
			if err != nil {
				t.Fatalf("%v n=%d: %v", c, n, err)
			}
			dec, err := Decompress(enc)
			if err != nil {
				t.Fatalf("%v n=%d: %v", c, n, err)
			}
			if !bytes.Equal(dec, payload) {
				t.Fatalf("%v n=%d: round trip mismatch", c, n)
			}
		}
	}
}

// TestDecompressLimit: a declared size over the caller's limit must be
// rejected as corrupt before any allocation; at or under it must decode.
func TestDecompressLimit(t *testing.T) {
	payload := bytes.Repeat([]byte("scdc"), 300)
	for _, c := range []Codec{None, Flate, LZ, Range, Huffman} {
		enc, err := Compress(c, payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecompressLimit(enc, len(payload)); err != nil {
			t.Errorf("%v: limit == size rejected: %v", c, err)
		}
		_, err = DecompressLimit(enc, len(payload)-1)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%v: limit-1 gave %v, want ErrCorrupt", c, err)
		}
	}
	if _, err := DecompressLimit(nil, 10); err == nil {
		t.Error("empty stream accepted")
	}
}

// TestPayloadLimit pins the geometric slack formula and its overflow
// guard, which every decoder trusts to cap hostile length headers.
func TestPayloadLimit(t *testing.T) {
	if got := PayloadLimit(0); got != 65536 {
		t.Errorf("PayloadLimit(0) = %d", got)
	}
	if got := PayloadLimit(1000); got != 256*1000+65536 {
		t.Errorf("PayloadLimit(1000) = %d", got)
	}
	maxInt := int(^uint(0) >> 1)
	if got := PayloadLimit(maxInt); got != maxInt {
		t.Errorf("PayloadLimit(maxInt) = %d, want maxInt (no overflow)", got)
	}
	if got := PayloadLimit(maxInt / 2); got != maxInt {
		t.Errorf("PayloadLimit(maxInt/2) = %d, want maxInt", got)
	}
}
