package lossless

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var codecs = []Codec{None, Flate, LZ, Range, Huffman}

func roundTrip(t *testing.T, c Codec, src []byte) {
	t.Helper()
	enc, err := Compress(c, src)
	if err != nil {
		t.Fatalf("%v compress: %v", c, err)
	}
	dec, err := Decompress(enc)
	if err != nil {
		t.Fatalf("%v decompress: %v", c, err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("%v round trip mismatch (%d vs %d bytes)", c, len(dec), len(src))
	}
}

func TestEmpty(t *testing.T) {
	for _, c := range codecs {
		roundTrip(t, c, nil)
		roundTrip(t, c, []byte{})
	}
}

func TestSmall(t *testing.T) {
	for _, c := range codecs {
		roundTrip(t, c, []byte{1})
		roundTrip(t, c, []byte{1, 2, 3})
	}
}

func TestRepetitive(t *testing.T) {
	src := bytes.Repeat([]byte("abcabcabc___"), 500)
	for _, c := range codecs {
		roundTrip(t, c, src)
	}
	// The LZ-family codecs must exploit the repetition; the order-0 range
	// coder only sees the symbol distribution, so it gets a looser check.
	for _, c := range []Codec{Flate, LZ} {
		enc, _ := Compress(c, src)
		if len(enc) >= len(src)/4 {
			t.Errorf("%v: poor compression of repetitive data: %d of %d", c, len(enc), len(src))
		}
	}
	if enc, _ := Compress(Range, src); len(enc) >= len(src)/2 {
		t.Errorf("range: poor compression of repetitive data: %d of %d", len(enc), len(src))
	}
}

func TestRandomIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := make([]byte, 8192)
	rng.Read(src)
	for _, c := range codecs {
		roundTrip(t, c, src)
	}
}

func TestOverlappingMatches(t *testing.T) {
	// RLE-style data exercises overlapping LZ copies.
	src := append(bytes.Repeat([]byte{0x5a}, 4000), bytes.Repeat([]byte{1, 2}, 2000)...)
	roundTrip(t, LZ, src)
}

func TestLongStream(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := make([]byte, 1<<18)
	// Mixed compressibility: runs plus noise.
	for i := 0; i < len(src); i += 256 {
		if rng.Intn(2) == 0 {
			b := byte(rng.Intn(256))
			for j := i; j < i+256; j++ {
				src[j] = b
			}
		} else {
			rng.Read(src[i : i+256])
		}
	}
	for _, c := range codecs {
		roundTrip(t, c, src)
	}
}

func TestCorrupt(t *testing.T) {
	src := bytes.Repeat([]byte("hello world "), 100)
	for _, c := range codecs {
		enc, _ := Compress(c, src)
		if _, err := Decompress(enc[:len(enc)/3]); err == nil && c != None {
			t.Errorf("%v: truncated stream accepted", c)
		}
	}
	if _, err := Decompress(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Decompress([]byte{99, 4, 1, 2, 3, 4}); err == nil {
		t.Error("unknown codec accepted")
	}
	// Stored-length mismatch for None.
	enc, _ := Compress(None, src)
	if _, err := Decompress(enc[:len(enc)-3]); err == nil {
		t.Error("short stored stream accepted")
	}
}

func TestCodecString(t *testing.T) {
	if None.String() != "none" || Flate.String() != "flate" || LZ.String() != "lz" || Range.String() != "range" {
		t.Error("codec names wrong")
	}
	if Sharded.String() != "sharded" || Auto.String() != "auto" || Store.String() != "store" || Huffman.String() != "huffman" {
		t.Error("codec names wrong")
	}
	if Codec(77).String() == "" {
		t.Error("unknown codec has empty name")
	}
}

// TestQuickLZ property: the from-scratch LZ codec round-trips arbitrary
// byte strings.
func TestQuickLZ(t *testing.T) {
	f := func(src []byte) bool {
		enc, err := Compress(LZ, src)
		if err != nil {
			return false
		}
		dec, err := Decompress(enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRange property: the from-scratch range coder round-trips
// arbitrary byte strings.
func TestQuickRange(t *testing.T) {
	f := func(src []byte) bool {
		enc, err := Compress(Range, src)
		if err != nil {
			return false
		}
		dec, err := Decompress(enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRangeBeatsNoneOnSkewed: the adaptive model must compress a skewed
// byte distribution well below raw size.
func TestRangeBeatsNoneOnSkewed(t *testing.T) {
	src := make([]byte, 1<<15)
	for i := range src {
		if i%7 == 0 {
			src[i] = byte(i % 3)
		}
	}
	enc, err := Compress(Range, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(src)/3 {
		t.Fatalf("range coder too weak: %d of %d", len(enc), len(src))
	}
	dec, err := Decompress(enc)
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatal("round trip failed")
	}
}
