package lossless

import (
	"encoding/binary"
	"fmt"
	"sync"

	"scdc/internal/parallel"
)

// Sharded lossless container (codec tag 4): the plaintext is split into
// K contiguous byte ranges that compress and decompress independently,
// so the back-end stage parallelizes in both directions the way the
// sharded Huffman sub-format parallelized entropy coding.
//
// Layout (after the shared one-byte codec tag and uvarint plaintext
// length every lossless stream carries):
//
//	uvarint(K)                            shard count, K >= 1
//	K x { byte codec,                     none/flate/lz/huffman
//	      uvarint(rawLen_i),              plaintext bytes of shard i
//	      uvarint(bodyLen_i) }            compressed bytes of shard i
//	K concatenated bodies                 raw codec bodies, no per-shard
//	                                      tag/length prefix
//
// The shard split depends only on len(src) — never on the worker count
// — and each shard is compressed independently, so the container is
// byte-identical across workers. Shards whose compressed body would
// not beat the plaintext are stored (codec none), bounding expansion.
// Every directory field is validated against the stream before the
// output is allocated: a lying shard count, length sum or body extent
// fails with ErrCorrupt first.

const (
	// shardTargetBytes is the plaintext size one shard aims for: big
	// enough that per-shard flate reset and directory overhead are
	// noise (<<1% ratio), small enough that typical streams fan out
	// across several workers.
	shardTargetBytes = 128 << 10
	// shardMinBytes is the smallest plaintext worth sharding at all;
	// below 2x this the container falls back to the plain format.
	shardMinBytes = 32 << 10
	// maxShardCount bounds the directory against pathological inputs.
	maxShardCount = 1024
)

// ShardCount returns the deterministic shard count CompressSharded
// uses for an n-byte plaintext: ~n/shardTargetBytes, 1 when n is too
// small to shard.
func ShardCount(n int) int {
	if n < 2*shardMinBytes {
		return 1
	}
	k := (n + shardTargetBytes - 1) / shardTargetBytes
	if k < 2 {
		k = 2
	}
	if k > maxShardCount {
		k = maxShardCount
	}
	return k
}

// shardBuf is a pooled per-shard output buffer that doubles as the
// io.Writer the pooled flate writers compress into.
type shardBuf struct{ b []byte }

func (w *shardBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

var shardBufPool = sync.Pool{New: func() any { return new(shardBuf) }}

// CompressSharded encodes src as a sharded lossless container when it
// is big enough to split, compressing shards on up to workers
// goroutines; smaller inputs fall back to the plain single-body format
// (both decode through Decompress). c selects the inner codec; Auto
// picks flate, LZ, Huffman or store per shard from EstimateBytes. The
// range coder is whole-buffer only and keeps the plain format. The
// output is byte-identical for every worker count.
func CompressSharded(c Codec, src []byte, workers int) ([]byte, error) {
	if c == Sharded {
		return nil, fmt.Errorf("lossless: sharded container needs an inner codec")
	}
	k := ShardCount(len(src))
	if k <= 1 || c == Range || c == None || c == Store {
		return Compress(c, src)
	}
	if c == Auto && pickCodec(src) == Huffman {
		c = Huffman
	}
	if c == Huffman {
		// The Huffman byte sub-format shards internally under one shared
		// code table (huff.go), so it parallelizes both directions on its
		// own; wrapping it in the container would charge a fresh 256-byte
		// code-length table per shard for nothing. Auto resolves on the
		// whole buffer above for the same reason: per-shard picks would
		// price per-shard tables into an otherwise clear Huffman win.
		out := make([]byte, 1, len(src)/2+320)
		out[0] = byte(Huffman)
		out = binary.AppendUvarint(out, uint64(len(src)))
		return huffCompressBody(out, src, workers), nil
	}

	n := len(src)
	bufs := make([]*shardBuf, k)
	codecs := make([]Codec, k)
	errs := make([]error, k)
	parallel.ForEach(k, workers, func(i int) {
		lo, hi := i*n/k, (i+1)*n/k
		shard := src[lo:hi]
		ci := c
		if ci == Auto {
			ci = pickCodec(shard)
		}
		sb := shardBufPool.Get().(*shardBuf)
		sb.b = sb.b[:0]
		switch ci {
		case Flate:
			errs[i] = flateCompressBody(sb, shard)
		case LZ:
			sb.b = lzCompress(sb.b, shard)
		case Huffman:
			sb.b = huffCompressBody(sb.b, shard, 1)
		}
		// Store-fallback: a body that cannot beat the plaintext is
		// stored verbatim, so a shard never expands past rawLen.
		if ci != None && len(sb.b) >= len(shard) {
			ci = None
			sb.b = sb.b[:0]
		}
		codecs[i] = ci
		bufs[i] = sb
	})
	for i, err := range errs {
		if err != nil {
			for _, sb := range bufs {
				shardBufPool.Put(sb)
			}
			return nil, fmt.Errorf("lossless: shard %d: %w", i, err)
		}
	}

	out := make([]byte, 0, n/2+16+8*k)
	out = append(out, byte(Sharded))
	out = binary.AppendUvarint(out, uint64(n))
	out = binary.AppendUvarint(out, uint64(k))
	for i, sb := range bufs {
		lo, hi := i*n/k, (i+1)*n/k
		bodyLen := len(sb.b)
		if codecs[i] == None {
			bodyLen = hi - lo
		}
		out = append(out, byte(codecs[i]))
		out = binary.AppendUvarint(out, uint64(hi-lo))
		out = binary.AppendUvarint(out, uint64(bodyLen))
	}
	for i, sb := range bufs {
		if codecs[i] == None {
			lo, hi := i*n/k, (i+1)*n/k
			out = append(out, src[lo:hi]...)
		} else {
			out = append(out, sb.b...)
		}
		shardBufPool.Put(sb)
	}
	return out, nil
}

// shardDir is one parsed directory entry.
type shardDir struct {
	codec            Codec
	rawOff, rawLen   int
	bodyOff, bodyLen int
}

// decodeSharded decodes the sharded container body (everything after
// the codec tag and the uvarint plaintext length, which the caller has
// already bounded against maxOut), fanning shard decodes across up to
// workers goroutines. Every directory claim is checked against the
// stream before the n-byte output is allocated.
func decodeSharded(data []byte, n int, workers int) ([]byte, error) {
	k64, c := binary.Uvarint(data)
	if c <= 0 {
		return nil, fmt.Errorf("%w: bad shard count", ErrCorrupt)
	}
	if k64 == 0 {
		return nil, fmt.Errorf("%w: zero-shard container", ErrCorrupt)
	}
	data = data[c:]
	// Each directory entry costs at least 3 bytes (codec byte plus two
	// one-byte uvarints), so the count is bounded by the stream before
	// the directory is allocated.
	if 3*k64 > uint64(len(data)) {
		return nil, fmt.Errorf("%w: shard count %d exceeds stream", ErrCorrupt, k64)
	}
	k := int(k64)
	// The encoder never splits past maxShardCount; a larger directory can
	// only come from a hostile header.
	if k > maxShardCount {
		return nil, fmt.Errorf("%w: shard count %d exceeds limit %d", ErrCorrupt, k, maxShardCount)
	}

	dir := make([]shardDir, k)
	rawOff, pos := 0, 0
	for s := range dir {
		if pos >= len(data) {
			return nil, fmt.Errorf("%w: truncated shard directory", ErrCorrupt)
		}
		cd := Codec(data[pos])
		pos++
		switch cd {
		case None, Flate, LZ, Huffman:
		default:
			return nil, fmt.Errorf("%w: invalid shard codec %d", ErrCorrupt, byte(cd))
		}
		rl, c := binary.Uvarint(data[pos:])
		if c <= 0 {
			return nil, fmt.Errorf("%w: bad shard length", ErrCorrupt)
		}
		pos += c
		bl, c := binary.Uvarint(data[pos:])
		if c <= 0 {
			return nil, fmt.Errorf("%w: bad shard body length", ErrCorrupt)
		}
		pos += c
		if rl == 0 {
			return nil, fmt.Errorf("%w: empty shard", ErrCorrupt)
		}
		if rl > uint64(n-rawOff) {
			return nil, fmt.Errorf("%w: shard lengths exceed declared size %d", ErrCorrupt, n)
		}
		dir[s] = shardDir{codec: cd, rawOff: rawOff, rawLen: int(rl), bodyLen: int(bl)}
		rawOff += int(rl)
	}
	if rawOff != n {
		return nil, fmt.Errorf("%w: shard lengths sum to %d, want %d", ErrCorrupt, rawOff, n)
	}
	bodies := data[pos:]
	bodyOff := 0
	for s := range dir {
		bl := dir[s].bodyLen
		if bl > len(bodies)-bodyOff {
			return nil, fmt.Errorf("%w: shard bodies exceed stream", ErrCorrupt)
		}
		dir[s].bodyOff = bodyOff
		bodyOff += bl
	}
	if bodyOff != len(bodies) {
		return nil, fmt.Errorf("%w: %d trailing body bytes", ErrCorrupt, len(bodies)-bodyOff)
	}

	out := make([]byte, n)
	errs := make([]error, k)
	parallel.ForEach(k, workers, func(s int) {
		d := dir[s]
		errs[s] = decodeShardBody(d.codec, bodies[d.bodyOff:d.bodyOff+d.bodyLen], out[d.rawOff:d.rawOff+d.rawLen])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeShardBody decodes one raw codec body into exactly dst. Shards
// decode in place — each gets its subslice of the final output — so
// the parallel fan-out copies nothing.
func decodeShardBody(c Codec, body, dst []byte) error {
	switch c {
	case None:
		if len(body) != len(dst) {
			return fmt.Errorf("%w: stored shard length mismatch", ErrCorrupt)
		}
		copy(dst, body)
		return nil
	case Flate:
		return flateDecompressInto(dst, body)
	case LZ:
		return lzDecompressInto(dst, body)
	case Huffman:
		return huffDecompressInto(dst, body, 1)
	default:
		return fmt.Errorf("%w: invalid shard codec %d", ErrCorrupt, byte(c))
	}
}
