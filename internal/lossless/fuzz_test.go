package lossless

import (
	"bytes"
	"testing"
)

// FuzzRangeCoderDecode: the adaptive range decoder reads zero-padding past
// the end of its input, so it must be the CRC and the expansion cap — not
// luck — that keep arbitrary bytes from decoding silently. Valid streams
// must round-trip; arbitrary streams must error or produce exactly n
// bytes, never panic or allocate past the cap.
func FuzzRangeCoderDecode(f *testing.F) {
	f.Add(rangeCompress([]byte("hello range coder")), 17)
	f.Add(rangeCompress(nil), 0)
	f.Add(rangeCompress(bytes.Repeat([]byte{0}, 3000)), 3000)
	f.Add([]byte{1, 2, 3}, 10)
	f.Fuzz(func(t *testing.T, data []byte, n int) {
		if n < 0 || n > 1<<20 {
			return
		}
		out, err := rangeDecompress(data, n)
		if err != nil {
			return
		}
		if len(out) != n {
			t.Fatalf("decoded %d bytes, want %d", len(out), n)
		}
		// A stream that passes its CRC must re-encode to the same bytes:
		// the coder is deterministic in both directions.
		re := rangeCompress(out)
		dec2, err := rangeDecompress(re, n)
		if err != nil || !bytes.Equal(dec2, out) {
			t.Fatalf("re-encode round trip broke: %v", err)
		}
	})
}

// FuzzLosslessDecompress covers the codec-tagged wrapper over all four
// back-ends, including hostile declared lengths against DecompressLimit.
func FuzzLosslessDecompress(f *testing.F) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	for _, c := range []Codec{None, Flate, LZ, Range} {
		enc, err := Compress(c, payload)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{byte(LZ), 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecompressLimit(data, 1<<22)
		if err != nil {
			return
		}
		if len(out) > 1<<22 {
			t.Fatalf("limit breached: %d bytes", len(out))
		}
		// Decoded output must re-compress and round-trip under every codec.
		for _, c := range []Codec{None, Flate, LZ, Range} {
			enc, err := Compress(c, out)
			if err != nil {
				t.Fatalf("%v: %v", c, err)
			}
			dec, err := Decompress(enc)
			if err != nil || !bytes.Equal(dec, out) {
				t.Fatalf("%v round trip: %v", c, err)
			}
		}
	})
}
