// Package lossless provides the final lossless compression stage that the
// paper's pipeline applies after entropy coding (ZSTD in the original
// implementations). Interchangeable codecs are provided:
//
//   - Flate: the stdlib DEFLATE implementation, the default back-end.
//   - LZ: a from-scratch byte-oriented LZ77 codec ("lz/2", see lz.go) with
//     a hash-chain matcher and 64-bit match kernels — the dependency-free
//     fast path and an ablation point (BenchmarkAblationLosslessBackend).
//   - Range: an adaptive binary range coder, the high-ratio ablation point.
//   - Sharded: a container (sharded.go) that splits the plaintext into
//     size-derived shards compressed and decompressed in parallel.
//   - Auto: per-buffer (or per-shard) codec selection from EstimateBytes.
//
// All streams open with a one-byte codec tag and the uvarint plaintext
// length, so they are self-describing and the decoder can bound every
// allocation before making it.
package lossless

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrCorrupt reports a malformed lossless stream.
var ErrCorrupt = errors.New("lossless: corrupt stream")

var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.DefaultCompression)
	return w
}}

// flateReaderState pairs a pooled flate reader with the bytes.Reader it
// resets over, so a decompress call allocates neither.
type flateReaderState struct {
	br bytes.Reader
	r  io.ReadCloser
}

var flateReaderPool = sync.Pool{New: func() any {
	st := new(flateReaderState)
	st.r = flate.NewReader(&st.br)
	return st
}}

// Codec identifies a lossless back-end.
type Codec byte

const (
	// None stores bytes verbatim.
	None Codec = 0
	// Flate is stdlib DEFLATE at default compression.
	Flate Codec = 1
	// LZ is the built-in LZ77 codec.
	LZ Codec = 2
	// Range is the built-in adaptive binary range coder.
	Range Codec = 3
	// Sharded is the parallel container format (sharded.go). It appears
	// as a stream tag only; use CompressSharded with an inner codec to
	// produce it.
	Sharded Codec = 4
	// Auto selects the cheapest of flate, LZ and store from a sampled
	// size estimate (estimate.go). Selection-only: the chosen codec's
	// tag is what the stream records, so Auto is never written.
	Auto Codec = 5
	// Store is a selection-only alias for None: it compresses to the
	// same stored stream (tag 0) but is a distinct option value, so
	// engine Options — whose zero value means "default back-end" — can
	// still request verbatim storage explicitly.
	Store Codec = 6
	// Huffman is order-0 canonical Huffman coding of the raw bytes
	// (huff.go) — DEFLATE-grade ratio on match-free entropy-stage output
	// at a fraction of the cost.
	Huffman Codec = 7
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case None:
		return "none"
	case Flate:
		return "flate"
	case LZ:
		return "lz"
	case Range:
		return "range"
	case Sharded:
		return "sharded"
	case Auto:
		return "auto"
	case Store:
		return "store"
	case Huffman:
		return "huffman"
	default:
		return fmt.Sprintf("codec(%d)", byte(c))
	}
}

// flateCompressBody writes the DEFLATE stream for src to w using a
// pooled writer.
func flateCompressBody(w io.Writer, src []byte) error {
	fw := flateWriterPool.Get().(*flate.Writer)
	defer flateWriterPool.Put(fw)
	fw.Reset(w)
	if _, err := fw.Write(src); err != nil {
		return err
	}
	return fw.Close()
}

// Compress encodes src with the chosen codec, prefixing the codec tag and
// the uncompressed length. Auto resolves to the cheapest estimated codec
// first; the Sharded container has its own entry point (CompressSharded)
// because it needs an inner codec and a worker count.
func Compress(c Codec, src []byte) ([]byte, error) {
	if c == Auto {
		c = pickCodec(src)
	}
	if c == Store {
		c = None
	}
	hdr := make([]byte, 1, 11)
	hdr[0] = byte(c)
	hdr = binary.AppendUvarint(hdr, uint64(len(src)))
	switch c {
	case None:
		return append(hdr, src...), nil
	case Flate:
		var buf bytes.Buffer
		buf.Grow(len(hdr) + len(src)/2 + 64)
		buf.Write(hdr)
		// Flate writers carry large internal match/window state; recycling
		// them removes the dominant per-call allocation of this stage.
		if err := flateCompressBody(&buf, src); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	case LZ:
		return lzCompress(hdr, src), nil
	case Range:
		return rangeCompressTo(hdr, src), nil
	case Huffman:
		return huffCompressBody(hdr, src, 1), nil
	case Sharded:
		return nil, fmt.Errorf("lossless: use CompressSharded for the sharded container")
	default:
		return nil, fmt.Errorf("lossless: unknown codec %d", c)
	}
}

// PayloadLimit returns a safe DecompressLimit bound for a codec payload
// that decodes a field of the given point count: generous enough for any
// stream the compressors can emit (headers, Huffman tables, 64-bit
// literals and anchors), yet proportional to the memory the caller will
// allocate for the field anyway.
func PayloadLimit(points int) int {
	const mult, slack = 256, 65536
	maxInt := int(^uint(0) >> 1)
	if points > (maxInt-slack)/mult {
		return maxInt
	}
	return mult*points + slack
}

// Decompress reverses Compress with no bound on the declared output size.
func Decompress(data []byte) ([]byte, error) {
	return DecompressLimitWorkers(data, -1, 1)
}

// DecompressLimit is Decompress with an upper bound on the header-declared
// output size. A decoder that knows its decoded geometry should pass
// PayloadLimit(points) so a hostile or damaged length header fails fast
// instead of driving a giant allocation (the LZ and range codecs otherwise
// decode exactly as many bytes as the header claims). maxOut < 0 disables
// the check.
func DecompressLimit(data []byte, maxOut int) ([]byte, error) {
	return DecompressLimitWorkers(data, maxOut, 1)
}

// DecompressLimitWorkers is DecompressLimit with a worker count for the
// sharded container, whose shards decode in parallel. The other codecs
// are single-body and ignore workers. The decoded bytes are identical
// for every worker count.
func DecompressLimitWorkers(data []byte, maxOut, workers int) ([]byte, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: empty stream", ErrCorrupt)
	}
	c := Codec(data[0])
	n, k := binary.Uvarint(data[1:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad length header", ErrCorrupt)
	}
	if maxOut >= 0 && n > uint64(maxOut) {
		return nil, fmt.Errorf("%w: declared size %d exceeds limit %d", ErrCorrupt, n, maxOut)
	}
	body := data[1+k:]
	switch c {
	case None:
		if uint64(len(body)) != n {
			return nil, fmt.Errorf("%w: stored length mismatch", ErrCorrupt)
		}
		return append([]byte(nil), body...), nil
	case Flate:
		// DEFLATE expands at most ~1032x per spec, so n is admissible once
		// it sits under both the caller's limit and the expansion bound;
		// the output is then allocated exactly once and filled in place.
		if n > 1032*uint64(len(body))+64 {
			return nil, fmt.Errorf("%w: declared size %d impossible for %d input bytes", ErrCorrupt, n, len(body))
		}
		out := make([]byte, n)
		if err := flateDecompressInto(out, body); err != nil {
			return nil, err
		}
		return out, nil
	case LZ:
		return lzDecompress(body, int(n))
	case Range:
		return rangeDecompress(body, int(n))
	case Huffman:
		return huffDecompress(body, int(n), workers)
	case Sharded:
		return decodeSharded(body, int(n), workers)
	default:
		return nil, fmt.Errorf("%w: unknown codec %d", ErrCorrupt, c)
	}
}

// flateDecompressInto inflates body into exactly dst, reading directly
// into the destination with a pooled reader — no intermediate buffer.
func flateDecompressInto(dst, body []byte) error {
	st := flateReaderPool.Get().(*flateReaderState)
	defer flateReaderPool.Put(st)
	st.br.Reset(body)
	if err := st.r.(flate.Resetter).Reset(&st.br, nil); err != nil {
		return fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	if _, err := io.ReadFull(st.r, dst); err != nil {
		return fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	// One byte past the declared length distinguishes "exactly n" from
	// "stream kept going": both a short and a long body are corruption.
	var probe [1]byte
	if _, err := st.r.Read(probe[:]); err != io.EOF {
		return fmt.Errorf("%w: flate length mismatch", ErrCorrupt)
	}
	return nil
}
