// Package lossless provides the final lossless compression stage that the
// paper's pipeline applies after entropy coding (ZSTD in the original
// implementations). Two interchangeable codecs are provided:
//
//   - Flate: the stdlib DEFLATE implementation, the default back-end.
//   - LZ: a from-scratch byte-oriented LZ77 codec with a hash-chain
//     matcher, useful where a dependency-free fast path is preferred and
//     as an ablation point (BenchmarkAblationLosslessBackend).
//
// Both are wrapped in a one-byte codec tag so streams are self-describing.
package lossless

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// ErrCorrupt reports a malformed lossless stream.
var ErrCorrupt = errors.New("lossless: corrupt stream")

var flateWriterPool = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.DefaultCompression)
	return w
}}

var flateReaderPool = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// Codec identifies a lossless back-end.
type Codec byte

const (
	// None stores bytes verbatim.
	None Codec = 0
	// Flate is stdlib DEFLATE at default compression.
	Flate Codec = 1
	// LZ is the built-in LZ77 codec.
	LZ Codec = 2
	// Range is the built-in adaptive binary range coder.
	Range Codec = 3
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case None:
		return "none"
	case Flate:
		return "flate"
	case LZ:
		return "lz"
	case Range:
		return "range"
	default:
		return fmt.Sprintf("codec(%d)", byte(c))
	}
}

// Compress encodes src with the chosen codec, prefixing the codec tag and
// the uncompressed length.
func Compress(c Codec, src []byte) ([]byte, error) {
	hdr := make([]byte, 1, 11)
	hdr[0] = byte(c)
	hdr = binary.AppendUvarint(hdr, uint64(len(src)))
	switch c {
	case None:
		return append(hdr, src...), nil
	case Flate:
		var buf bytes.Buffer
		buf.Write(hdr)
		// Flate writers carry large internal match/window state; recycling
		// them removes the dominant per-call allocation of this stage.
		w := flateWriterPool.Get().(*flate.Writer)
		defer flateWriterPool.Put(w)
		w.Reset(&buf)
		if _, err := w.Write(src); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	case LZ:
		return append(hdr, lzCompress(src)...), nil
	case Range:
		return rangeCompressTo(hdr, src), nil
	default:
		return nil, fmt.Errorf("lossless: unknown codec %d", c)
	}
}

// PayloadLimit returns a safe DecompressLimit bound for a codec payload
// that decodes a field of the given point count: generous enough for any
// stream the compressors can emit (headers, Huffman tables, 64-bit
// literals and anchors), yet proportional to the memory the caller will
// allocate for the field anyway.
func PayloadLimit(points int) int {
	const mult, slack = 256, 65536
	maxInt := int(^uint(0) >> 1)
	if points > (maxInt-slack)/mult {
		return maxInt
	}
	return mult*points + slack
}

// Decompress reverses Compress with no bound on the declared output size.
func Decompress(data []byte) ([]byte, error) {
	return DecompressLimit(data, -1)
}

// DecompressLimit is Decompress with an upper bound on the header-declared
// output size. A decoder that knows its decoded geometry should pass
// PayloadLimit(points) so a hostile or damaged length header fails fast
// instead of driving a giant allocation (the LZ and range codecs otherwise
// decode exactly as many bytes as the header claims). maxOut < 0 disables
// the check.
func DecompressLimit(data []byte, maxOut int) ([]byte, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("%w: empty stream", ErrCorrupt)
	}
	c := Codec(data[0])
	n, k := binary.Uvarint(data[1:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad length header", ErrCorrupt)
	}
	if maxOut >= 0 && n > uint64(maxOut) {
		return nil, fmt.Errorf("%w: declared size %d exceeds limit %d", ErrCorrupt, n, maxOut)
	}
	body := data[1+k:]
	switch c {
	case None:
		if uint64(len(body)) != n {
			return nil, fmt.Errorf("%w: stored length mismatch", ErrCorrupt)
		}
		return append([]byte(nil), body...), nil
	case Flate:
		r := flateReaderPool.Get().(io.ReadCloser)
		defer flateReaderPool.Put(r)
		if err := r.(flate.Resetter).Reset(bytes.NewReader(body), nil); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		// The preallocation hint is clamped: DEFLATE expands at most ~1032x,
		// so memory use stays proportional to the body even when the header
		// lies about n in the unlimited path.
		hint := n
		if hint > 1<<20 {
			hint = 1 << 20
		}
		out := make([]byte, 0, hint)
		buf := bytes.NewBuffer(out)
		if _, err := io.Copy(buf, io.LimitReader(r, int64(n)+1)); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		if uint64(buf.Len()) != n {
			return nil, fmt.Errorf("%w: flate length mismatch", ErrCorrupt)
		}
		return buf.Bytes(), nil
	case LZ:
		return lzDecompress(body, int(n))
	case Range:
		return rangeDecompress(body, int(n))
	default:
		return nil, fmt.Errorf("%w: unknown codec %d", ErrCorrupt, c)
	}
}
