package lossless

import (
	"encoding/binary"
	"fmt"
	mbits "math/bits"
	"sync"
)

// The LZ codec is a byte-oriented LZ77 in the LZ4 mold ("lz/2"),
// replacing the seed-era uvarint token stream with a kernelized
// sequence format built for branch-light decode:
//
//	token    1 byte: litLen in the high nibble, matchLen-4 in the low
//	         nibble; a nibble of 15 extends with 255-run length bytes
//	         (each 255 adds 255, the first byte < 255 terminates)
//	[litExt] extension bytes when litLen nibble == 15
//	literals litLen raw bytes
//	offset   2 bytes little endian, 1..65535 (absent in the final
//	         sequence)
//	[mExt]   extension bytes when the match nibble == 15
//
// The final sequence carries only literals: the decoder stops when the
// declared output length is reached, so no in-band terminator exists.
// Matches are at least lzMinMatch bytes and may overlap their source.
//
// The encoder is a hash-chain matcher over 4-byte seeds with 64-bit
// unaligned probes (binary.LittleEndian.Uint64 compiles to a single
// load) and XOR+TrailingZeros64 match extension; its tables are pooled
// so steady-state compression allocates nothing.

const (
	lzMinMatch = 4
	lzHashBits = 16
	lzMaxChain = 16
	// lzWindow is the largest encodable match offset (2-byte field).
	lzWindow = 1<<16 - 1
	// lzNibbleExt marks an extended length nibble.
	lzNibbleExt = 15
	// lzTail: the last lzMinMatch+4 bytes are always emitted as
	// literals so 64-bit probes never read past the buffer.
	lzTail = lzMinMatch + 4
	// lzMaxExpand bounds the decode expansion: one extension byte can
	// add at most 255 match bytes, so n > lzMaxExpand*len(src) is
	// structurally impossible and rejected before allocating.
	lzMaxExpand = 255
)

// lzTables is the pooled encoder state: hash-bucket heads and the
// per-position chain links.
type lzTables struct {
	head  [1 << lzHashBits]int32
	chain []int32
}

var lzTablePool = sync.Pool{New: func() any { return new(lzTables) }}

// lzHash is Fibonacci hashing of a 4-byte seed.
//
//scdc:inline
func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

//scdc:inline
func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

//scdc:inline
func load64(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[i:])
}

// lzMatchLen counts matching bytes between src[a:] and src[b:] (a < b),
// reading at most limit-b bytes, eight at a time.
//
//scdc:hot
//scdc:noalloc
func lzMatchLen(src []byte, a, b, limit int) int {
	n := 0
	for b+n+8 <= limit {
		x := load64(src, a+n) ^ load64(src, b+n)
		if x != 0 {
			return n + mbits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for b+n < limit && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// lzEmitLen appends the 255-run extension encoding of v >= 0.
//
//scdc:inline
func lzEmitLen(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// lzEmitSeq appends one full sequence: token, length extensions, the
// literal run, and the match offset. mlen >= lzMinMatch.
func lzEmitSeq(dst, lit []byte, mlen, off int) []byte {
	tok := byte(0)
	if len(lit) >= lzNibbleExt {
		tok = lzNibbleExt << 4
	} else {
		tok = byte(len(lit)) << 4
	}
	m := mlen - lzMinMatch
	if m >= lzNibbleExt {
		tok |= lzNibbleExt
	} else {
		tok |= byte(m)
	}
	dst = append(dst, tok)
	if len(lit) >= lzNibbleExt {
		dst = lzEmitLen(dst, len(lit)-lzNibbleExt)
	}
	dst = append(dst, lit...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(off))
	if m >= lzNibbleExt {
		dst = lzEmitLen(dst, m-lzNibbleExt)
	}
	return dst
}

// lzEmitFinal appends the terminal literal-only sequence.
func lzEmitFinal(dst, lit []byte) []byte {
	if len(lit) >= lzNibbleExt {
		dst = append(dst, lzNibbleExt<<4)
		dst = lzEmitLen(dst, len(lit)-lzNibbleExt)
	} else {
		dst = append(dst, byte(len(lit))<<4)
	}
	return append(dst, lit...)
}

// lzCompress appends the lz/2 sequence stream for src to dst. The
// encoder is greedy: at each position the hash chain is probed up to
// lzMaxChain times and the longest match wins; positions inside an
// emitted match are inserted every other byte so later matches can
// reference the region.
//
//scdc:hot
func lzCompress(dst, src []byte) []byte {
	if len(src) <= lzTail {
		return lzEmitFinal(dst, src)
	}
	t := lzTablePool.Get().(*lzTables)
	// head entries are positions+1, so the zero value means "empty" and
	// the table clear is a plain memset.
	clear(t.head[:])
	if cap(t.chain) < len(src) {
		t.chain = make([]int32, len(src)+len(src)/4)
	}
	chain := t.chain[:len(src)]

	// Greedy parse. limit keeps every 64-bit probe in bounds; the tail
	// rides out with the final literal run.
	limit := len(src) - lzTail
	litStart := 0
	i := 0
	for i <= limit {
		seed := load32(src, i)
		h := lzHash(seed)
		cand := int(t.head[h]) - 1
		t.head[h] = int32(i + 1)
		chain[i] = int32(cand + 1)

		bestLen, bestOff := 0, 0
		minPos := i - lzWindow
		for tries := lzMaxChain; cand >= 0 && cand >= minPos && tries > 0; tries-- {
			if load32(src, cand) == seed {
				l := lzMatchLen(src, cand, i, len(src))
				if l > bestLen {
					bestLen, bestOff = l, i-cand
				}
			}
			cand = int(chain[cand]) - 1
		}

		if bestLen < lzMinMatch {
			i++
			continue
		}
		if i+bestLen > limit {
			// Never let a match swallow the guaranteed literal tail.
			bestLen = limit - i
			if bestLen < lzMinMatch {
				i++
				continue
			}
		}
		dst = lzEmitSeq(dst, src[litStart:i], bestLen, bestOff)
		end := i + bestLen
		for j := i + 2; j < end && j <= limit; j += 2 {
			hj := lzHash(load32(src, j))
			chain[j] = t.head[hj]
			t.head[hj] = int32(j + 1)
		}
		i = end
		litStart = i
	}
	dst = lzEmitFinal(dst, src[litStart:])
	lzTablePool.Put(t)
	return dst
}

// lzReadLen reads a 255-run length extension starting at src[i],
// returning the accumulated value and the new cursor. The value is
// capped against max so hostile runs cannot overflow.
//
//scdc:inline
func lzReadLen(src []byte, i, max int) (int, int, bool) {
	v := 0
	for i < len(src) {
		b := src[i]
		i++
		v += int(b)
		if v > max {
			return 0, 0, false
		}
		if b < 255 {
			return v, i, true
		}
	}
	return 0, 0, false
}

// lzDecompress decodes an lz/2 sequence stream into exactly n bytes.
// Every structural failure wraps ErrCorrupt; the output is allocated
// only after the expansion cap admits n.
func lzDecompress(src []byte, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative length", ErrCorrupt)
	}
	// A sequence byte can contribute at most lzMaxExpand output bytes
	// (a 255-run extension byte), so a lying header fails before the
	// allocation it was hoping to force.
	if int64(n) > lzMaxExpand*int64(len(src))+lzNibbleExt {
		return nil, fmt.Errorf("%w: declared size %d impossible for %d input bytes", ErrCorrupt, n, len(src))
	}
	out := make([]byte, n)
	if err := lzDecompressInto(out, src); err != nil {
		return nil, err
	}
	return out, nil
}

// lzDecompressInto decodes src into exactly len(dst) bytes. It is the
// shard-level decode kernel: the sharded container hands each shard a
// subslice of the final output so shards decode in place and in
// parallel with zero copies.
//
//scdc:hot
//scdc:noalloc
func lzDecompressInto(dst, src []byte) error {
	n := len(dst)
	i, o := 0, 0
	for {
		if i >= len(src) {
			return fmt.Errorf("%w: truncated token", ErrCorrupt)
		}
		tok := src[i]
		i++
		lit := int(tok >> 4)
		if lit == lzNibbleExt {
			var ok bool
			lit, i, ok = lzReadLen(src, i, n)
			if !ok {
				return fmt.Errorf("%w: bad literal extension", ErrCorrupt)
			}
			lit += lzNibbleExt
		}
		if lit > len(src)-i || lit > n-o {
			return fmt.Errorf("%w: literal run exceeds bounds", ErrCorrupt)
		}
		copy(dst[o:o+lit], src[i:i+lit])
		i += lit
		o += lit
		if o == n {
			if i != len(src) {
				return fmt.Errorf("%w: trailing bytes after output filled", ErrCorrupt)
			}
			return nil
		}

		if len(src)-i < 2 {
			return fmt.Errorf("%w: truncated offset", ErrCorrupt)
		}
		off := int(binary.LittleEndian.Uint16(src[i:]))
		i += 2
		if off == 0 || off > o {
			return fmt.Errorf("%w: match offset out of range", ErrCorrupt)
		}
		mlen := int(tok & lzNibbleExt)
		if mlen == lzNibbleExt {
			ext, ni, ok := lzReadLen(src, i, n)
			if !ok {
				return fmt.Errorf("%w: bad match extension", ErrCorrupt)
			}
			mlen += ext
			i = ni
		}
		mlen += lzMinMatch
		if mlen > n-o {
			return fmt.Errorf("%w: match exceeds output length", ErrCorrupt)
		}
		if mlen <= off {
			copy(dst[o:o+mlen], dst[o-off:])
			o += mlen
			continue
		}
		// Overlapping match: the copy repeats its own output.
		s := o - off
		for j := 0; j < mlen; j++ {
			dst[o+j] = dst[s+j]
		}
		o += mlen
	}
}
