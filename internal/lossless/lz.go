package lossless

import "fmt"

// The LZ codec is a byte-oriented LZ77 with a 64 KiB window and a
// hash-chain matcher, in the spirit of LZ4/ZSTD's fast modes. The token
// format interleaves literal runs and matches:
//
//	token := litLen:uvarint, literals..., matchLen:uvarint, offset:uvarint
//
// matchLen == 0 terminates the stream (the trailing literal run carries any
// remaining bytes). Minimum useful match length is 4.

const (
	lzWindow   = 1 << 16
	lzMinMatch = 4
	lzHashBits = 15
	lzMaxChain = 16
)

func lzHash(v uint32) uint32 {
	// Fibonacci hashing of the 4-byte sequence.
	return (v * 2654435761) >> (32 - lzHashBits)
}

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

func putUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func getUvarint(src []byte, pos int) (uint64, int, error) {
	var v uint64
	var shift uint
	for {
		if pos >= len(src) {
			return 0, 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
		}
		b := src[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, pos, nil
		}
		shift += 7
		if shift > 63 {
			return 0, 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
		}
	}
}

// lzCompress produces the token stream for src.
func lzCompress(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+16)
	if len(src) < lzMinMatch {
		out = putUvarint(out, uint64(len(src)))
		out = append(out, src...)
		out = putUvarint(out, 0) // terminator
		return out
	}

	head := make([]int32, 1<<lzHashBits)
	for i := range head {
		head[i] = -1
	}
	chain := make([]int32, len(src))

	litStart := 0
	i := 0
	limit := len(src) - lzMinMatch
	for i <= limit {
		h := lzHash(load32(src, i))
		cand := head[h]
		head[h] = int32(i)
		chain[i] = cand

		bestLen, bestOff := 0, 0
		tries := lzMaxChain
		for cand >= 0 && int(cand) >= i-lzWindow+1 && tries > 0 {
			c := int(cand)
			if load32(src, c) == load32(src, i) {
				l := lzMinMatch
				max := len(src) - i
				for l < max && src[c+l] == src[i+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestOff = l, i-c
				}
			}
			cand = chain[c]
			tries--
		}

		if bestLen >= lzMinMatch {
			out = putUvarint(out, uint64(i-litStart))
			out = append(out, src[litStart:i]...)
			out = putUvarint(out, uint64(bestLen))
			out = putUvarint(out, uint64(bestOff))
			// Insert hash entries inside the match (sparsely, every other
			// byte) so later matches can reference this region.
			end := i + bestLen
			for j := i + 1; j <= end-lzMinMatch && j <= limit; j += 2 {
				hj := lzHash(load32(src, j))
				chain[j] = head[hj]
				head[hj] = int32(j)
			}
			i = end
			litStart = i
		} else {
			i++
		}
	}
	// Trailing literals and terminator.
	out = putUvarint(out, uint64(len(src)-litStart))
	out = append(out, src[litStart:]...)
	out = putUvarint(out, 0)
	return out
}

// lzDecompress decodes a token stream produced by lzCompress into exactly
// n bytes.
func lzDecompress(src []byte, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative length", ErrCorrupt)
	}
	// Clamp the preallocation: growth past the hint is driven by actual
	// decoded tokens, so a lying length header cannot force a giant
	// up-front allocation.
	hint := n
	if hint > 1<<20 {
		hint = 1 << 20
	}
	out := make([]byte, 0, hint)
	pos := 0
	for {
		litLen, p, err := getUvarint(src, pos)
		if err != nil {
			return nil, err
		}
		pos = p
		if litLen > uint64(len(src)-pos) || len(out)+int(litLen) > n {
			return nil, fmt.Errorf("%w: literal run exceeds bounds", ErrCorrupt)
		}
		out = append(out, src[pos:pos+int(litLen)]...)
		pos += int(litLen)

		matchLen, p, err := getUvarint(src, pos)
		if err != nil {
			return nil, err
		}
		pos = p
		if matchLen == 0 {
			break
		}
		off, p, err := getUvarint(src, pos)
		if err != nil {
			return nil, err
		}
		pos = p
		if off == 0 || off > uint64(len(out)) {
			return nil, fmt.Errorf("%w: match offset out of range", ErrCorrupt)
		}
		if len(out)+int(matchLen) > n {
			return nil, fmt.Errorf("%w: match exceeds output length", ErrCorrupt)
		}
		start := len(out) - int(off)
		for j := 0; j < int(matchLen); j++ { // byte-wise: matches may overlap
			out = append(out, out[start+j])
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("%w: decoded %d bytes, want %d", ErrCorrupt, len(out), n)
	}
	return out, nil
}
