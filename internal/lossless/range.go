package lossless

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// Adaptive order-0 binary range coder (the LZMA rc formulation), the
// third lossless back-end. Each byte is coded bit by bit through a
// 256-node binary context tree whose probabilities adapt as the stream is
// processed. Slower than the LZ codec but often tighter on Huffman
// output, whose byte distribution is skewed but not run-heavy — the
// ablation point `BenchmarkAblationLosslessBackend` compares all three.

const (
	rcTopBits   = 24
	rcProbBits  = 11
	rcProbInit  = 1 << (rcProbBits - 1)
	rcAdaptRate = 5
)

type rangeEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
	probs     [256]uint16
}

func (e *rangeEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		temp := e.cache
		for {
			e.out = append(e.out, temp+byte(e.low>>32))
			temp = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

func (e *rangeEncoder) encodeBit(ctx int, bit int) {
	p := uint32(e.probs[ctx])
	bound := (e.rng >> rcProbBits) * p
	if bit == 0 {
		e.rng = bound
		e.probs[ctx] = uint16(p + (((1 << rcProbBits) - p) >> rcAdaptRate))
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		e.probs[ctx] = uint16(p - (p >> rcAdaptRate))
	}
	for e.rng < 1<<rcTopBits {
		e.shiftLow()
		e.rng <<= 8
	}
}

func (e *rangeEncoder) encodeByte(b byte) {
	node := 1
	for i := 7; i >= 0; i-- {
		bit := int(b>>uint(i)) & 1
		e.encodeBit(node, bit)
		node = node<<1 | bit
	}
}

func (e *rangeEncoder) finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

type rangeDecoder struct {
	code  uint32
	rng   uint32
	in    []byte
	pos   int
	probs [256]uint16
}

func newRangeDecoder(in []byte) *rangeDecoder {
	d := &rangeDecoder{rng: 0xFFFFFFFF}
	for i := range d.probs {
		d.probs[i] = rcProbInit
	}
	d.in = in
	d.next() // first byte emitted by the encoder is always 0
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *rangeDecoder) next() byte {
	if d.pos < len(d.in) {
		b := d.in[d.pos]
		d.pos++
		return b
	}
	return 0
}

func (d *rangeDecoder) decodeBit(ctx int) int {
	p := uint32(d.probs[ctx])
	bound := (d.rng >> rcProbBits) * p
	var bit int
	if d.code < bound {
		d.rng = bound
		d.probs[ctx] = uint16(p + (((1 << rcProbBits) - p) >> rcAdaptRate))
	} else {
		bit = 1
		d.code -= bound
		d.rng -= bound
		d.probs[ctx] = uint16(p - (p >> rcAdaptRate))
	}
	for d.rng < 1<<rcTopBits {
		d.code = d.code<<8 | uint32(d.next())
		d.rng <<= 8
	}
	return bit
}

func (d *rangeDecoder) decodeByte() byte {
	node := 1
	for i := 0; i < 8; i++ {
		node = node<<1 | d.decodeBit(node)
	}
	return byte(node & 0xFF)
}

// rangeEncPool recycles encoders across calls: the 256-entry probability
// model and the output buffer are the stage's only allocations, and both
// reset cheaply.
var rangeEncPool = sync.Pool{New: func() any { return new(rangeEncoder) }}

// reset restores the pooled encoder to its initial coding state with an
// output buffer of at least capHint capacity. The adaptive model rarely
// beats ~0.18 bits/byte even on degenerate input, so len(src)+16 covers
// the stream plus the 5-byte flush tail without regrowth in practice.
func (e *rangeEncoder) reset(capHint int) {
	e.low, e.cache = 0, 0
	e.rng, e.cacheSize = 0xFFFFFFFF, 1
	if cap(e.out) < capHint {
		e.out = make([]byte, 0, capHint)
	} else {
		e.out = e.out[:0]
	}
	for i := range e.probs {
		e.probs[i] = rcProbInit
	}
}

// rangeCompressTo encodes src with the adaptive byte model, appending the
// stream to dst, followed by a CRC-32 of the plaintext so truncation and
// corruption are detectable (a pure range stream decodes garbage silently
// otherwise). The encoder and its buffer come from a pool; the stream is
// copied into dst before release.
func rangeCompressTo(dst, src []byte) []byte {
	e := rangeEncPool.Get().(*rangeEncoder)
	defer rangeEncPool.Put(e)
	e.reset(len(src) + 16)
	for _, b := range src {
		e.encodeByte(b)
	}
	dst = append(dst, e.finish()...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(src))
	return append(dst, crc[:]...)
}

// rangeCompress is rangeCompressTo into a fresh, right-sized buffer.
func rangeCompress(src []byte) []byte {
	return rangeCompressTo(make([]byte, 0, len(src)+20), src)
}

// rangeMaxExpansion bounds the plaintext-to-stream ratio a valid range
// stream can reach. The adaptive probability saturates near 2017/2048, so
// even an all-zero plaintext costs >= ~0.18 bits per byte (~45x); 1024x
// leaves a wide margin while stopping hostile length headers, because the
// decoder otherwise synthesizes unlimited output from zero-padding.
const rangeMaxExpansion = 1024

// rangeDecompress decodes exactly n bytes and verifies the trailing CRC.
func rangeDecompress(src []byte, n int) ([]byte, error) {
	if n < 0 || len(src) < 4 {
		return nil, fmt.Errorf("%w: short range stream", ErrCorrupt)
	}
	body, crc := src[:len(src)-4], src[len(src)-4:]
	if n > 0 && (len(body) == 0 || n/len(body) > rangeMaxExpansion) {
		return nil, fmt.Errorf("%w: %d bytes declared for %d-byte range stream", ErrCorrupt, n, len(body))
	}
	d := newRangeDecoder(body)
	out := make([]byte, n)
	for i := range out {
		out[i] = d.decodeByte()
	}
	if crc32.ChecksumIEEE(out) != binary.LittleEndian.Uint32(crc) {
		return nil, fmt.Errorf("%w: range stream checksum mismatch", ErrCorrupt)
	}
	return out, nil
}
