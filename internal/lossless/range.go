package lossless

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Adaptive order-0 binary range coder (the LZMA rc formulation), the
// third lossless back-end. Each byte is coded bit by bit through a
// 256-node binary context tree whose probabilities adapt as the stream is
// processed. Slower than the LZ codec but often tighter on Huffman
// output, whose byte distribution is skewed but not run-heavy — the
// ablation point `BenchmarkAblationLosslessBackend` compares all three.

const (
	rcTopBits   = 24
	rcProbBits  = 11
	rcProbInit  = 1 << (rcProbBits - 1)
	rcAdaptRate = 5
)

type rangeEncoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	out       []byte
	probs     [256]uint16
}

func newRangeEncoder() *rangeEncoder {
	e := &rangeEncoder{rng: 0xFFFFFFFF, cacheSize: 1}
	for i := range e.probs {
		e.probs[i] = rcProbInit
	}
	return e
}

func (e *rangeEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || e.low>>32 != 0 {
		temp := e.cache
		for {
			e.out = append(e.out, temp+byte(e.low>>32))
			temp = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

func (e *rangeEncoder) encodeBit(ctx int, bit int) {
	p := uint32(e.probs[ctx])
	bound := (e.rng >> rcProbBits) * p
	if bit == 0 {
		e.rng = bound
		e.probs[ctx] = uint16(p + (((1 << rcProbBits) - p) >> rcAdaptRate))
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		e.probs[ctx] = uint16(p - (p >> rcAdaptRate))
	}
	for e.rng < 1<<rcTopBits {
		e.shiftLow()
		e.rng <<= 8
	}
}

func (e *rangeEncoder) encodeByte(b byte) {
	node := 1
	for i := 7; i >= 0; i-- {
		bit := int(b>>uint(i)) & 1
		e.encodeBit(node, bit)
		node = node<<1 | bit
	}
}

func (e *rangeEncoder) finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.out
}

type rangeDecoder struct {
	code  uint32
	rng   uint32
	in    []byte
	pos   int
	probs [256]uint16
}

func newRangeDecoder(in []byte) *rangeDecoder {
	d := &rangeDecoder{rng: 0xFFFFFFFF}
	for i := range d.probs {
		d.probs[i] = rcProbInit
	}
	d.in = in
	d.next() // first byte emitted by the encoder is always 0
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *rangeDecoder) next() byte {
	if d.pos < len(d.in) {
		b := d.in[d.pos]
		d.pos++
		return b
	}
	return 0
}

func (d *rangeDecoder) decodeBit(ctx int) int {
	p := uint32(d.probs[ctx])
	bound := (d.rng >> rcProbBits) * p
	var bit int
	if d.code < bound {
		d.rng = bound
		d.probs[ctx] = uint16(p + (((1 << rcProbBits) - p) >> rcAdaptRate))
	} else {
		bit = 1
		d.code -= bound
		d.rng -= bound
		d.probs[ctx] = uint16(p - (p >> rcAdaptRate))
	}
	for d.rng < 1<<rcTopBits {
		d.code = d.code<<8 | uint32(d.next())
		d.rng <<= 8
	}
	return bit
}

func (d *rangeDecoder) decodeByte() byte {
	node := 1
	for i := 0; i < 8; i++ {
		node = node<<1 | d.decodeBit(node)
	}
	return byte(node & 0xFF)
}

// rangeCompress encodes src with the adaptive byte model, appending a
// CRC-32 of the plaintext so truncation and corruption are detectable
// (a pure range stream decodes garbage silently otherwise).
func rangeCompress(src []byte) []byte {
	e := newRangeEncoder()
	for _, b := range src {
		e.encodeByte(b)
	}
	out := e.finish()
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(src))
	return append(out, crc[:]...)
}

// rangeMaxExpansion bounds the plaintext-to-stream ratio a valid range
// stream can reach. The adaptive probability saturates near 2017/2048, so
// even an all-zero plaintext costs >= ~0.18 bits per byte (~45x); 1024x
// leaves a wide margin while stopping hostile length headers, because the
// decoder otherwise synthesizes unlimited output from zero-padding.
const rangeMaxExpansion = 1024

// rangeDecompress decodes exactly n bytes and verifies the trailing CRC.
func rangeDecompress(src []byte, n int) ([]byte, error) {
	if n < 0 || len(src) < 4 {
		return nil, fmt.Errorf("%w: short range stream", ErrCorrupt)
	}
	body, crc := src[:len(src)-4], src[len(src)-4:]
	if n > 0 && (len(body) == 0 || n/len(body) > rangeMaxExpansion) {
		return nil, fmt.Errorf("%w: %d bytes declared for %d-byte range stream", ErrCorrupt, n, len(body))
	}
	d := newRangeDecoder(body)
	out := make([]byte, n)
	for i := range out {
		out[i] = d.decodeByte()
	}
	if crc32.ChecksumIEEE(out) != binary.LittleEndian.Uint32(crc) {
		return nil, fmt.Errorf("%w: range stream checksum mismatch", ErrCorrupt)
	}
	return out, nil
}
