package lossless

import (
	"fmt"
	"testing"
)

// benchPayload synthesizes a buffer that mimics the entropy-stage output
// the lossless back-end really sees: mostly low-byte symbol noise with
// embedded repeated motifs (table headers, run regions), deterministic
// so every run and every machine benches the same bytes.
func benchPayload(n int) []byte {
	out := make([]byte, n)
	state := uint64(0x9e3779b97f4a7c15)
	motif := []byte("\x00\x01\x00\x02\x01\x00\x03\x00\x00\x01\x02\x00")
	for i := 0; i < n; {
		state = state*6364136223846793005 + 1442695040888963407
		r := state >> 33
		if r%5 == 0 {
			k := copy(out[i:], motif)
			i += k
			continue
		}
		out[i] = byte(r % 37)
		i++
	}
	return out
}

// BenchmarkLosslessCodecs is the per-codec ledger benchmark behind the
// lossless_bench rows in results/BENCH_pr10.json: one compress and one
// decompress series per back-end, sharded variants at 4 workers.
func BenchmarkLosslessCodecs(b *testing.B) {
	src := benchPayload(1 << 20)
	const workers = 4

	type variant struct {
		name    string
		enc     func() ([]byte, error)
		workers int
	}
	variants := []variant{
		{"flate", func() ([]byte, error) { return Compress(Flate, src) }, 1},
		{"lz", func() ([]byte, error) { return Compress(LZ, src) }, 1},
		{"huffman", func() ([]byte, error) { return Compress(Huffman, src) }, 1},
		{"sharded-flate", func() ([]byte, error) { return CompressSharded(Flate, src, workers) }, workers},
		{"sharded-lz", func() ([]byte, error) { return CompressSharded(LZ, src, workers) }, workers},
		{"sharded-huffman", func() ([]byte, error) { return CompressSharded(Huffman, src, workers) }, workers},
		{"sharded-auto", func() ([]byte, error) { return CompressSharded(Auto, src, workers) }, workers},
	}

	for _, v := range variants {
		enc, err := v.enc()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("compress/codec=%s", v.name), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				if _, err := v.enc(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(src))/float64(len(enc)), "ratio")
		})
		b.Run(fmt.Sprintf("decompress/codec=%s", v.name), func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				out, err := DecompressLimitWorkers(enc, len(src), v.workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != len(src) {
					b.Fatal("length mismatch")
				}
			}
		})
	}
}
