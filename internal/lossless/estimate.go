package lossless

import "math"

// Size estimation for the lossless back-ends, in the mold of
// internal/entropy's Dist estimators: one cheap sampled probe over the
// buffer yields an order-0 entropy figure and a 4-byte match-coverage
// figure, from which every codec's output size is priced without
// running it. The Auto codec resolves to the cheapest estimate, per
// shard in the sharded container. The probe iterates in buffer order
// only (no maps), so the estimate — and therefore the codec choice the
// stream records — is deterministic (DESIGN.md §10 streamdeterminism).

const (
	// estWindow is one sampled window; up to three (head, middle, tail)
	// are probed so a buffer whose character shifts — headers up front,
	// literals at the back — is not misjudged from its first bytes.
	estWindow = 16 << 10
	// estProbeBits sizes the match-probe hash table.
	estProbeBits = 12
)

// probe holds the sampled statistics EstimateBytes prices codecs from.
type probe struct {
	// entropyBits is the order-0 entropy of the sampled bytes, in bits
	// per byte (0..8).
	entropyBits float64
	// matchCover is the fraction of sampled bytes covered by greedily
	// extended matches — a stand-in for LZ match coverage.
	matchCover float64
	// matchPerByte is matches per sampled byte; with matchCover it fixes
	// the average match length, which is what separates "long repeats a
	// match coder feasts on" from "4-byte seed collisions that barely
	// pay for their length/distance codes".
	matchPerByte float64
}

// sampleProbe scans up to three estWindow-sized windows of src.
func sampleProbe(src []byte) probe {
	if len(src) == 0 {
		return probe{}
	}
	var hist [256]int
	var table [1 << estProbeBits]int32
	covered, matches, total := 0, 0, 0

	window := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hist[src[i]]++
		}
		total += hi - lo
		// Greedy match walk, the shape of an LZ parse: at each hit the
		// match is extended to its full length and the cursor skips past
		// it, so covered/matches measure what a match coder would emit
		// rather than raw seed-collision density (which saturates on
		// high-entropy data whose short motifs recur constantly but
		// compress no better than their literals).
		for i := lo; i+lzMinMatch <= hi; {
			seed := load32(src, i)
			h := lzHash(seed) >> (lzHashBits - estProbeBits)
			prev := int(table[h]) - 1
			table[h] = int32(i + 1)
			if prev >= lo && prev < i && load32(src, prev) == seed {
				l := lzMinMatch
				for i+l < hi && src[prev+l] == src[i+l] {
					l++
				}
				covered += l
				matches++
				i += l
				continue
			}
			i++
		}
	}

	if len(src) <= 3*estWindow {
		window(0, len(src))
	} else {
		window(0, estWindow)
		mid := len(src)/2 - estWindow/2
		window(mid, mid+estWindow)
		window(len(src)-estWindow, len(src))
	}

	var p probe
	n := float64(total)
	for _, c := range hist {
		if c == 0 {
			continue
		}
		f := float64(c) / n
		p.entropyBits -= f * math.Log2(f)
	}
	if total > 0 {
		p.matchCover = float64(covered) / float64(total)
		p.matchPerByte = float64(matches) / float64(total)
	}
	return p
}

// estimate prices one codec from the probe statistics, the way the
// codec actually spends bytes: flate pays the order-0 entropy for
// unmatched bytes and a small per-match residue, LZ stores unmatched
// bytes raw and roughly one 3-byte sequence per ~16 covered bytes,
// Huffman pays the order-0 entropy everywhere plus its code table, the
// range coder tracks the order-0 rate with its adaptive byte model,
// and store pays the input verbatim.
func (p probe) estimate(c Codec, n int) int {
	fn := float64(n)
	switch c {
	case Flate:
		// Literals pay the order-0 entropy; each match replaces its
		// covered literals with a length/distance pair. flateMatchBits is
		// the all-in price of one short match — length and distance codes
		// plus their extra bits plus the literal-table degradation the
		// match leaves behind — so the 4-6 byte seed collisions that
		// saturate entropy-coded input price out near break-even (matching
		// measured DEFLATE behaviour, which nets well under 1% on such
		// buffers), while long repeats still register as big savings
		// through matchCover. The entropy term is shared with the Huffman
		// estimate below, so the flate-vs-Huffman pick reduces to these
		// match savings against the 256-byte table — sampling error in the
		// entropy itself cancels.
		const flateMatchBits = 30
		bitsPerByte := (1-p.matchCover)*p.entropyBits + p.matchPerByte*flateMatchBits
		return int(fn*bitsPerByte/8) + 64
	case LZ:
		// Unmatched bytes stored raw, ~3 bytes of token/offset per match.
		return int(fn*((1-p.matchCover)+p.matchPerByte*3)) + 16
	case Huffman:
		// Flat 256-byte code-length table plus the sub-format header and
		// shard directory (huffman/bytes.go).
		return int(fn*p.entropyBits/8) + 232
	case Range:
		return int(fn*p.entropyBits/8) + 24
	default: // None, Store
		return n + 6
	}
}

// EstimateBytes predicts the Compress(c, src) output size without
// running the codec, from one sampled probe. Auto resolves to the
// cheapest of store, Huffman, LZ and flate first.
func EstimateBytes(c Codec, src []byte) int {
	if c == None || c == Store {
		return len(src) + 6
	}
	p := sampleProbe(src)
	if c == Auto {
		c = p.pick(len(src))
	}
	return p.estimate(c, len(src))
}

// pick resolves the Auto codec for an n-byte buffer: the cheapest of
// store, Huffman, LZ and flate by estimate. The estimates only rank
// reliably outside a few percent, so within estSlack of the minimum the
// cheaper-to-run codec wins — candidates are ordered by decreasing
// codec speed, which is how a match-free entropy-stage buffer routes to
// the Huffman byte codec instead of a DEFLATE pass that would shave
// nothing but sampling noise.
func (p probe) pick(n int) Codec {
	const estSlack = 1.02
	cands := [...]Codec{None, Huffman, LZ, Flate}
	var ests [len(cands)]int
	best := -1
	for i, c := range cands {
		ests[i] = p.estimate(c, n)
		if best < 0 || ests[i] < best {
			best = ests[i]
		}
	}
	for i, c := range cands {
		if float64(ests[i]) <= estSlack*float64(best) {
			return c
		}
	}
	return Flate
}

// pickCodec is probe-then-pick for one buffer (or one shard of the
// sharded container).
func pickCodec(src []byte) Codec {
	return sampleProbe(src).pick(len(src))
}
