package lossless

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// shardedPayload is big enough to split (several shards) and mixes the
// compressible/noisy structure of real entropy-stage output.
func shardedPayload(seed int64, n int) []byte {
	return randomPayload(rand.New(rand.NewSource(seed)), n)
}

// TestShardCount pins the deterministic split policy the container's
// worker-independence rests on.
func TestShardCount(t *testing.T) {
	cases := []struct{ n, k int }{
		{0, 1},
		{shardMinBytes, 1},
		{2*shardMinBytes - 1, 1},
		{2 * shardMinBytes, 2},
		{shardTargetBytes, 2},
		{10 * shardTargetBytes, 10},
		{2 * maxShardCount * shardTargetBytes, maxShardCount},
	}
	for _, c := range cases {
		if got := ShardCount(c.n); got != c.k {
			t.Errorf("ShardCount(%d) = %d, want %d", c.n, got, c.k)
		}
	}
}

// TestShardedWorkerIdentity: the stream must be byte-identical for every
// worker count, per codec — the shard split and every per-shard codec
// decision depend only on the bytes.
func TestShardedWorkerIdentity(t *testing.T) {
	src := shardedPayload(21, 5*shardTargetBytes+123)
	for _, c := range []Codec{Flate, LZ, Huffman, Auto} {
		ref, err := CompressSharded(c, src, 1)
		if err != nil {
			t.Fatalf("%v workers=1: %v", c, err)
		}
		for _, w := range []int{2, 4, 8} {
			enc, err := CompressSharded(c, src, w)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", c, w, err)
			}
			if !bytes.Equal(enc, ref) {
				t.Fatalf("%v: stream differs between workers=1 and workers=%d", c, w)
			}
		}
		for _, w := range []int{1, 2, 4, 8} {
			dec, err := DecompressLimitWorkers(ref, len(src), w)
			if err != nil {
				t.Fatalf("%v decompress workers=%d: %v", c, w, err)
			}
			if !bytes.Equal(dec, src) {
				t.Fatalf("%v: round trip mismatch at workers=%d", c, w)
			}
		}
	}
}

// TestShardedRoundTrip sweeps sizes across the fallback boundary and odd
// tails for every inner codec.
func TestShardedRoundTrip(t *testing.T) {
	sizes := []int{0, 1, 1000, 2*shardMinBytes - 1, 2 * shardMinBytes,
		2*shardMinBytes + 7, shardTargetBytes + 1, 3*shardTargetBytes + 13}
	for _, c := range []Codec{None, Flate, LZ, Huffman, Range, Auto, Store} {
		for _, n := range sizes {
			src := shardedPayload(int64(n)+7, n)
			enc, err := CompressSharded(c, src, 3)
			if err != nil {
				t.Fatalf("%v n=%d: %v", c, n, err)
			}
			dec, err := DecompressLimitWorkers(enc, n, 3)
			if err != nil {
				t.Fatalf("%v n=%d: %v", c, n, err)
			}
			if !bytes.Equal(dec, src) {
				t.Fatalf("%v n=%d: round trip mismatch", c, n)
			}
		}
	}
	if _, err := CompressSharded(Sharded, []byte("x"), 1); err == nil {
		t.Error("Sharded as inner codec accepted")
	}
}

// shardedStream builds a hand-rolled tag-4 stream from directory triples
// and body bytes, for hostile-header tests.
func shardedStream(n int, dir [][3]uint64, bodies []byte) []byte {
	out := []byte{byte(Sharded)}
	out = binary.AppendUvarint(out, uint64(n))
	out = binary.AppendUvarint(out, uint64(len(dir)))
	for _, d := range dir {
		out = append(out, byte(d[0]))
		out = binary.AppendUvarint(out, d[1])
		out = binary.AppendUvarint(out, d[2])
	}
	return append(out, bodies...)
}

// TestShardedHostileHeaders: every lying directory claim must fail with
// ErrCorrupt during validation — before the container allocates the
// declared output or hands a shard to an inner codec.
func TestShardedHostileHeaders(t *testing.T) {
	stored := func(n int) [3]uint64 { return [3]uint64{uint64(None), uint64(n), uint64(n)} }
	cases := map[string][]byte{
		"zero shards":        shardedStream(4, nil, []byte{1, 2, 3, 4}),
		"empty shard":        shardedStream(4, [][3]uint64{stored(4), {uint64(None), 0, 0}}, []byte{1, 2, 3, 4}),
		"count beyond body":  shardedStream(8, [][3]uint64{stored(4), stored(4), stored(4)}, []byte{1, 2, 3, 4, 5, 6, 7, 8}),
		"sum under declared": shardedStream(9, [][3]uint64{stored(4), stored(4)}, []byte{1, 2, 3, 4, 5, 6, 7, 8}),
		"sum over declared":  shardedStream(7, [][3]uint64{stored(4), stored(4)}, []byte{1, 2, 3, 4, 5, 6, 7, 8}),
		"body overrun":       shardedStream(8, [][3]uint64{stored(4), {uint64(None), 4, 400}}, []byte{1, 2, 3, 4, 5, 6, 7, 8}),
		"trailing body":      shardedStream(4, [][3]uint64{stored(4)}, []byte{1, 2, 3, 4, 5}),
		"bad inner codec":    shardedStream(4, [][3]uint64{{uint64(Range), 4, 4}}, []byte{1, 2, 3, 4}),
		"nested container":   shardedStream(4, [][3]uint64{{uint64(Sharded), 4, 4}}, []byte{1, 2, 3, 4}),
		"stored length lie":  shardedStream(8, [][3]uint64{{uint64(None), 8, 4}}, []byte{1, 2, 3, 4}),
		"truncated dir":      shardedStream(8, [][3]uint64{stored(4)}, nil)[:5],
		// A shard count in the millions against a tiny stream must be
		// rejected by the 3-bytes-per-entry bound before the directory
		// slice is allocated.
		"huge shard count": append(binary.AppendUvarint(binary.AppendUvarint([]byte{byte(Sharded)}, 16), 1<<40), 0, 1, 2),
	}
	for name, stream := range cases {
		if _, err := DecompressLimitWorkers(stream, 1<<20, 2); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	// Sanity: a well-formed hand-rolled stream decodes.
	good := shardedStream(8, [][3]uint64{stored(4), stored(4)}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	dec, err := DecompressLimitWorkers(good, 1<<20, 2)
	if err != nil || !bytes.Equal(dec, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("well-formed stream rejected: %v", err)
	}
}

// TestHuffmanHostileHeaders drives the byte sub-format's validation: a
// stream whose code table over-subscribes the canonical space, or whose
// shard directory lies about counts or body extents, must fail with
// ErrCorrupt rather than panic or mis-decode.
func TestHuffmanHostileHeaders(t *testing.T) {
	src := shardedPayload(5, 4096)
	enc, err := Compress(Huffman, src)
	if err != nil {
		t.Fatal(err)
	}
	body := enc[3:] // strip codec tag + 2-byte uvarint(4096)

	mutate := func(mut func(b []byte) []byte) []byte {
		b := mut(append([]byte(nil), body...))
		out := []byte{byte(Huffman)}
		out = binary.AppendUvarint(out, 4096)
		return append(out, b...)
	}
	cases := map[string][]byte{
		"bad marker":  mutate(func(b []byte) []byte { b[0] ^= 0xff; return b }),
		"bad version": mutate(func(b []byte) []byte { b[1] = 0x7f; return b }),
		// All-ones packed table: 256 codes of length 63 over-subscribe
		// the canonical space ~2^55-fold.
		"oversubscribed table": mutate(func(b []byte) []byte {
			for i := 0; i < 192; i++ {
				b[4+i] = 0xff
			}
			return b
		}),
		"empty table": mutate(func(b []byte) []byte {
			for i := 0; i < 192; i++ {
				b[4+i] = 0
			}
			return b
		}),
		"truncated table": mutate(func(b []byte) []byte { return b[:50] }),
		"truncated body":  mutate(func(b []byte) []byte { return b[:len(b)-5] }),
		"trailing bytes":  mutate(func(b []byte) []byte { return append(b, 0xaa) }),
		"count mismatch": mutate(func(b []byte) []byte {
			b[2], b[3] = 0x81, 0x01 // uvarint 129 instead of 4096
			return b
		}),
	}
	for name, stream := range cases {
		if _, err := Decompress(stream); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
	// A lying sample count far past the 8-symbols-per-byte bound must be
	// rejected before the output allocation.
	huge := []byte{byte(Huffman)}
	huge = binary.AppendUvarint(huge, 1<<50)
	huge = append(huge, body...)
	if _, err := Decompress(huge); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge count: got %v, want ErrCorrupt", err)
	}
}

// TestFlateDecompressAllocs pins the direct-read decompress path: the
// output buffer is allocated once from the bound-checked declared length
// and inflated into in place, with reader state pooled — so the whole
// call stays within a handful of allocations.
func TestFlateDecompressAllocs(t *testing.T) {
	src := shardedPayload(9, 64<<10)
	enc, err := Compress(Flate, src)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pools.
	if _, err := DecompressLimit(enc, len(src)); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := DecompressLimit(enc, len(src)); err != nil {
			t.Fatal(err)
		}
	})
	// What remains is one output buffer plus stdlib flate's per-block
	// huffman link tables (~14 for this payload). The former copy through
	// bytes.Buffer added a ~12-allocation growth chain on top, so the pin
	// sits between the two.
	if allocs > 20 {
		t.Errorf("flate decompress: %.1f allocs/op, want <= 20", allocs)
	}
}

// FuzzLosslessSharded: arbitrary bytes against the sharded container and
// Huffman byte-stream decoders — must error or decode within the limit,
// never panic; valid decodes must re-encode and round-trip.
func FuzzLosslessSharded(f *testing.F) {
	small := shardedPayload(3, 1000)
	big := shardedPayload(4, 2*shardMinBytes+17)
	for _, c := range []Codec{Flate, LZ, Huffman, Auto} {
		enc, err := CompressSharded(c, big, 2)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	if enc, err := Compress(Huffman, small); err == nil {
		f.Add(enc)
	}
	f.Add(shardedStream(8, [][3]uint64{{uint64(None), 4, 4}, {uint64(LZ), 4, 4}}, []byte{1, 2, 3, 4, 5, 6, 7, 8}))
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := DecompressLimitWorkers(data, 1<<22, 3)
		if err != nil {
			return
		}
		if len(out) > 1<<22 {
			t.Fatalf("limit breached: %d bytes", len(out))
		}
		re, err := CompressSharded(Auto, out, 2)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecompressLimitWorkers(re, len(out), 2)
		if err != nil || !bytes.Equal(dec, out) {
			t.Fatalf("re-encode round trip broke: %v", err)
		}
	})
}
