// Package metrics implements the quality-assessment measures of the paper's
// Section III-A: MSE, PSNR, maximum absolute/relative error, compression
// ratio, and bit-rate.
package metrics

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when original and decompressed arrays have
// different lengths.
var ErrLengthMismatch = errors.New("metrics: array length mismatch")

// MSE returns the mean squared error between d and d2.
func MSE(d, d2 []float64) (float64, error) {
	if len(d) != len(d2) {
		return 0, ErrLengthMismatch
	}
	if len(d) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range d {
		e := d[i] - d2[i]
		sum += e * e
	}
	return sum / float64(len(d)), nil
}

// PSNR returns 20*log10(range/sqrt(MSE)) where range = max(d)-min(d), the
// formula of Section III-A. A zero MSE yields +Inf; a zero range with
// nonzero MSE yields -Inf.
func PSNR(d, d2 []float64) (float64, error) {
	mse, err := MSE(d, d2)
	if err != nil {
		return 0, err
	}
	lo, hi := minMax(d)
	rng := hi - lo
	if mse == 0 {
		return math.Inf(1), nil
	}
	if rng == 0 {
		return math.Inf(-1), nil
	}
	return 20 * math.Log10(rng/math.Sqrt(mse)), nil
}

// MaxAbsError returns max_i |d[i]-d2[i]|.
func MaxAbsError(d, d2 []float64) (float64, error) {
	if len(d) != len(d2) {
		return 0, ErrLengthMismatch
	}
	m := 0.0
	for i := range d {
		e := math.Abs(d[i] - d2[i])
		if e > m {
			m = e
		}
	}
	return m, nil
}

// MaxRelError returns the maximum absolute error divided by the value range
// of d, the "max relative error" reported in the paper's Table II.
func MaxRelError(d, d2 []float64) (float64, error) {
	e, err := MaxAbsError(d, d2)
	if err != nil {
		return 0, err
	}
	lo, hi := minMax(d)
	if hi == lo {
		if e == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return e / (hi - lo), nil
}

// CompressionRatio returns originalBytes/compressedBytes.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	if compressedBytes == 0 {
		return math.Inf(1)
	}
	return float64(originalBytes) / float64(compressedBytes)
}

// BitRate returns the average number of bits per sample in the compressed
// stream: bitsPerSample/CR, i.e. 32/CR for float32 data and 64/CR for
// float64 data (Section III-A).
func BitRate(bitsPerSample int, cr float64) float64 {
	if cr == 0 {
		return math.Inf(1)
	}
	return float64(bitsPerSample) / cr
}

// ThroughputMBps converts (bytes processed, seconds elapsed) to MB/s using
// the paper's convention of 1 MB = 1e6 bytes.
func ThroughputMBps(bytes int, seconds float64) float64 {
	if seconds <= 0 {
		return math.Inf(1)
	}
	return float64(bytes) / 1e6 / seconds
}

func minMax(d []float64) (lo, hi float64) {
	if len(d) == 0 {
		return 0, 0
	}
	lo, hi = d[0], d[0]
	for _, v := range d[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
