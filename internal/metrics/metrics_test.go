package metrics

import (
	"math"
	"testing"
)

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 4.0/3 {
		t.Fatalf("mse = %g", got)
	}
	if _, err := MSE([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Fatalf("err = %v", err)
	}
	if got, _ := MSE(nil, nil); got != 0 {
		t.Fatalf("empty mse = %g", got)
	}
}

func TestPSNR(t *testing.T) {
	d := []float64{0, 1, 2, 3, 4}
	same := append([]float64(nil), d...)
	p, err := PSNR(d, same)
	if err != nil || !math.IsInf(p, 1) {
		t.Fatalf("identical psnr = %g err=%v", p, err)
	}
	noisy := []float64{0.1, 1.1, 2.1, 3.1, 4.1}
	p, _ = PSNR(d, noisy)
	// range=4, rmse=0.1 -> 20*log10(40) = 32.04
	if math.Abs(p-20*math.Log10(40)) > 1e-9 {
		t.Fatalf("psnr = %g", p)
	}
	flat := []float64{2, 2, 2}
	p, _ = PSNR(flat, []float64{3, 3, 3})
	if !math.IsInf(p, -1) {
		t.Fatalf("zero-range psnr = %g", p)
	}
}

func TestMaxErrors(t *testing.T) {
	d := []float64{0, 10}
	d2 := []float64{0.5, 9}
	m, _ := MaxAbsError(d, d2)
	if m != 1 {
		t.Fatalf("maxabs = %g", m)
	}
	r, _ := MaxRelError(d, d2)
	if r != 0.1 {
		t.Fatalf("maxrel = %g", r)
	}
	flat := []float64{5, 5}
	r, _ = MaxRelError(flat, flat)
	if r != 0 {
		t.Fatalf("flat identical rel = %g", r)
	}
	r, _ = MaxRelError(flat, []float64{5, 6})
	if !math.IsInf(r, 1) {
		t.Fatalf("flat nonzero rel = %g", r)
	}
	if _, err := MaxAbsError([]float64{1}, nil); err != ErrLengthMismatch {
		t.Fatalf("err = %v", err)
	}
	if _, err := MaxRelError([]float64{1}, nil); err != ErrLengthMismatch {
		t.Fatalf("err = %v", err)
	}
}

func TestRatioAndBitRate(t *testing.T) {
	if cr := CompressionRatio(1000, 100); cr != 10 {
		t.Fatalf("cr = %g", cr)
	}
	if cr := CompressionRatio(1000, 0); !math.IsInf(cr, 1) {
		t.Fatalf("cr = %g", cr)
	}
	if br := BitRate(32, 16); br != 2 {
		t.Fatalf("bitrate = %g", br)
	}
	if br := BitRate(32, 0); !math.IsInf(br, 1) {
		t.Fatalf("bitrate = %g", br)
	}
}

func TestThroughput(t *testing.T) {
	if v := ThroughputMBps(2e6, 2); v != 1 {
		t.Fatalf("throughput = %g", v)
	}
	if v := ThroughputMBps(1, 0); !math.IsInf(v, 1) {
		t.Fatalf("throughput = %g", v)
	}
}
