package inttest

import (
	"math"
	"math/rand"
	"testing"

	"scdc"
	"scdc/internal/datagen"
)

// TestCorruptionNeverPanics: random single-byte flips and truncations of
// valid streams must produce errors (or, rarely, a wrong-but-well-formed
// result), never a panic or an out-of-bounds access, for every algorithm.
func TestCorruptionNeverPanics(t *testing.T) {
	f := datagen.MustGenerate(datagen.Miranda, 0, []int{20, 24, 28}, 3)
	rng := rand.New(rand.NewSource(99))
	for alg := scdc.SZ3; alg <= scdc.SPERR; alg++ {
		opts := scdc.Options{Algorithm: alg, RelativeBound: 1e-3}
		if alg.SupportsQP() {
			opts.QP = scdc.DefaultQP()
		}
		stream, err := scdc.Compress(f.Data, f.Dims(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 120; trial++ {
			mutated := append([]byte(nil), stream...)
			switch trial % 3 {
			case 0: // single byte flip
				pos := rng.Intn(len(mutated))
				mutated[pos] ^= byte(1 + rng.Intn(255))
			case 1: // truncation
				mutated = mutated[:rng.Intn(len(mutated))]
			case 2: // multi-byte garbage
				for k := 0; k < 8; k++ {
					mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v trial %d: decoder panicked: %v", alg, trial, r)
					}
				}()
				res, err := scdc.Decompress(mutated)
				if err == nil && len(res.Data) != f.Len() {
					t.Fatalf("%v trial %d: silent wrong-size result", alg, trial)
				}
			}()
		}
	}
}

// TestChunkedCorruptionNeverPanics covers the chunked container the same
// way.
func TestChunkedCorruptionNeverPanics(t *testing.T) {
	f := datagen.MustGenerate(datagen.Miranda, 0, []int{20, 24, 28}, 3)
	stream, err := scdc.CompressChunked(f.Data, f.Dims(), scdc.Options{Algorithm: scdc.SZ3, RelativeBound: 1e-3}, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 80; trial++ {
		mutated := append([]byte(nil), stream...)
		if trial%2 == 0 {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		} else {
			mutated = mutated[:rng.Intn(len(mutated))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: chunked decoder panicked: %v", trial, r)
				}
			}()
			_, _ = scdc.DecompressChunked(mutated, 2)
			_, _ = scdc.Inspect(mutated)
		}()
	}
}

// TestNaNData: NaN and Inf samples must round-trip bit-exactly through
// the literal path of the prediction-based compressors without poisoning
// neighboring reconstructions.
func TestNaNData(t *testing.T) {
	f := datagen.MustGenerate(datagen.SegSalt, 0, []int{16, 18, 20}, 4)
	f.Data[100] = math.NaN()
	f.Data[2000] = math.Inf(1)
	f.Data[3000] = math.Inf(-1)
	for _, alg := range []scdc.Algorithm{scdc.SZ3, scdc.QoZ, scdc.HPEZ, scdc.MGARD} {
		stream, err := scdc.Compress(f.Data, f.Dims(), scdc.Options{Algorithm: alg, ErrorBound: 1e-3, QP: scdc.DefaultQP()})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		res, err := scdc.Decompress(stream)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !math.IsNaN(res.Data[100]) {
			t.Errorf("%v: NaN not preserved", alg)
		}
		if !math.IsInf(res.Data[2000], 1) || !math.IsInf(res.Data[3000], -1) {
			t.Errorf("%v: Inf not preserved", alg)
		}
		// Finite samples still respect the bound.
		bad := 0
		for i, v := range res.Data {
			if i == 100 || i == 2000 || i == 3000 {
				continue
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				bad++
				continue
			}
			if math.Abs(v-f.Data[i]) > 1e-3*(1+1e-12) {
				bad++
			}
		}
		if bad > 0 {
			t.Errorf("%v: %d finite samples corrupted near non-finite values", alg, bad)
		}
	}
}
