package inttest

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"scdc/internal/core"
	"scdc/internal/datagen"
	"scdc/internal/grid"
	"scdc/internal/interp"
	"scdc/internal/lossless"
	"scdc/internal/qoz"
	"scdc/internal/quantizer"
	"scdc/internal/sz3"
)

// TestInterpWorkersBitIdentical extends the PR 5 worker-matrix pattern
// to the kernelized interpolation stage: for sz3 × {linear, cubic} and
// qoz × {tuned, untuned}, with QP on and off, compressed streams must be
// byte-identical and decompressed fields bit-identical across worker
// counts {1, 2, 4, 8}. Dims are chosen large enough that the passes
// clear minParallelPoints and actually exercise the chunk-parallel
// forward/inverse kernel paths.
func TestInterpWorkersBitIdentical(t *testing.T) {
	f := datagen.MustGenerate(datagen.Miranda, 1, []int{40, 48, 56}, 9)
	field := grid.MustNew(f.Dims()...)
	copy(field.Data, f.Data)
	workerCounts := []int{1, 2, 4, 8}
	eb := 1e-3 * f.Range()

	type cell struct {
		name       string
		compress   func(workers int) ([]byte, error)
		decompress func(payload []byte, workers int) (*grid.Field, error)
	}
	var cells []cell
	for _, kind := range []interp.Kind{interp.Linear, interp.Cubic} {
		for _, qp := range []bool{false, true} {
			kind, qp := kind, qp
			cells = append(cells, cell{
				name: fmt.Sprintf("sz3/%v/qp=%v", kind, qp),
				compress: func(workers int) ([]byte, error) {
					opts := sz3.DefaultOptions(eb)
					opts.Interp = kind
					opts.Workers = workers
					if qp {
						opts.QP = core.Default()
					}
					return sz3.Compress(field, opts)
				},
				decompress: func(payload []byte, workers int) (*grid.Field, error) {
					return sz3.DecompressWorkers(payload, field.Dims(), workers)
				},
			})
		}
	}
	for _, tune := range []bool{false, true} {
		for _, qp := range []bool{false, true} {
			tune, qp := tune, qp
			cells = append(cells, cell{
				name: fmt.Sprintf("qoz/tune=%v/qp=%v", tune, qp),
				compress: func(workers int) ([]byte, error) {
					opts := qoz.Options{
						ErrorBound: eb,
						Radius:     quantizer.DefaultRadius,
						Lossless:   lossless.Flate,
						Tune:       tune,
						Workers:    workers,
					}
					if qp {
						opts.QP = core.Default()
					}
					return qoz.Compress(field, opts)
				},
				decompress: func(payload []byte, workers int) (*grid.Field, error) {
					return qoz.DecompressWorkers(payload, field.Dims(), workers)
				},
			})
		}
	}

	for _, c := range cells {
		t.Run(c.name, func(t *testing.T) {
			var refStream []byte
			var refField []float64
			for _, w := range workerCounts {
				stream, err := c.compress(w)
				if err != nil {
					t.Fatalf("workers=%d: compress: %v", w, err)
				}
				out, err := c.decompress(stream, w)
				if err != nil {
					t.Fatalf("workers=%d: decompress: %v", w, err)
				}
				if w == workerCounts[0] {
					refStream, refField = stream, out.Data
					continue
				}
				if !bytes.Equal(stream, refStream) {
					t.Fatalf("workers=%d: stream differs from workers=1 (%d vs %d bytes)",
						w, len(stream), len(refStream))
				}
				for i := range refField {
					if math.Float64bits(out.Data[i]) != math.Float64bits(refField[i]) {
						t.Fatalf("workers=%d: field diverges at %d: %v != %v",
							w, i, out.Data[i], refField[i])
					}
				}
			}
		})
	}
}
