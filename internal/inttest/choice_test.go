package inttest

import (
	"testing"

	"scdc/internal/datagen"
	"scdc/internal/sz3"
)

func TestDiagChoice(t *testing.T) {
	for _, ds := range []datagen.Dataset{datagen.Miranda, datagen.SegSalt, datagen.Scale, datagen.CESM, datagen.RTM, datagen.Hurricane, datagen.S3D} {
		f := datagen.MustGenerate(ds, 0, nil, 1)
		rng := f.Range()
		for _, rel := range []float64{1e-3, 1e-4, 1e-5} {
			eb := rel * rng
			oI := sz3.DefaultOptions(eb)
			oI.Choice = sz3.ChoiceInterp
			pI, _ := sz3.Compress(f, oI)
			oL := sz3.DefaultOptions(eb)
			oL.Choice = sz3.ChoiceLorenzo
			pL, _ := sz3.Compress(f, oL)
			tr := &sz3.Trace{}
			oA := sz3.DefaultOptions(eb)
			oA.Trace = tr
			sz3.Compress(f, oA)
			want := "interp"
			if len(pL) < len(pI) {
				want = "lorenzo"
			}
			got := "interp"
			if tr.Mode == sz3.ModeLorenzo {
				got = "lorenzo"
			}
			mark := "OK "
			if got != want {
				mark = "BAD"
			}
			t.Logf("%s %-10v rel=%g: interp=%7d lorenzo=%7d auto=%s (true best %s)", mark, ds, rel, len(pI), len(pL), got, want)
		}
	}
}
