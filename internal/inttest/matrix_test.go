// Package inttest holds cross-module integration tests: every compressor
// against every synthetic dataset, QP bit-identity across the full matrix,
// and predictor-selection sanity.
package inttest

import (
	"math"
	"testing"

	"scdc"
	"scdc/internal/datagen"
)

var matrixDims = []int{40, 48, 56}

var allDatasets = []datagen.Dataset{
	datagen.Miranda, datagen.Hurricane, datagen.SegSalt,
	datagen.Scale, datagen.S3D, datagen.CESM, datagen.RTM,
}

// TestMatrixRoundTrip: every (compressor x dataset x bound) cell must
// round-trip within the bound (TTHRESH: within its RMSE budget).
func TestMatrixRoundTrip(t *testing.T) {
	for _, ds := range allDatasets {
		f := datagen.MustGenerate(ds, 1, matrixDims, 9)
		for alg := scdc.SZ3; alg <= scdc.SPERR; alg++ {
			for _, rel := range []float64{1e-3, 1e-5} {
				opts := scdc.Options{Algorithm: alg, RelativeBound: rel}
				if alg.SupportsQP() {
					opts.QP = scdc.DefaultQP()
				}
				stream, err := scdc.Compress(f.Data, f.Dims(), opts)
				if err != nil {
					t.Fatalf("%v/%v rel=%g compress: %v", ds, alg, rel, err)
				}
				res, err := scdc.Decompress(stream)
				if err != nil {
					t.Fatalf("%v/%v rel=%g decompress: %v", ds, alg, rel, err)
				}
				bound := rel * f.Range()
				if alg == scdc.TTHRESH {
					mse, _ := scdc.MSE(f.Data, res.Data)
					if math.Sqrt(mse) > bound {
						t.Errorf("%v/%v rel=%g: RMSE %g > %g", ds, alg, rel, math.Sqrt(mse), bound)
					}
					continue
				}
				maxErr, _ := scdc.MaxAbsError(f.Data, res.Data)
				if maxErr > bound*(1+1e-12) {
					t.Errorf("%v/%v rel=%g: max err %g > %g", ds, alg, rel, maxErr, bound)
				}
			}
		}
	}
}

// TestMatrixQPBitIdentity: across every base and dataset, enabling QP
// must leave the decompressed bytes identical — the paper's core
// correctness property.
func TestMatrixQPBitIdentity(t *testing.T) {
	for _, ds := range allDatasets {
		f := datagen.MustGenerate(ds, 1, matrixDims, 9)
		for _, alg := range []scdc.Algorithm{scdc.SZ3, scdc.QoZ, scdc.HPEZ, scdc.MGARD} {
			base, err := scdc.Compress(f.Data, f.Dims(), scdc.Options{Algorithm: alg, RelativeBound: 1e-4})
			if err != nil {
				t.Fatal(err)
			}
			qp, err := scdc.Compress(f.Data, f.Dims(), scdc.Options{Algorithm: alg, RelativeBound: 1e-4, QP: scdc.DefaultQP()})
			if err != nil {
				t.Fatal(err)
			}
			if len(qp) > len(base) {
				t.Errorf("%v/%v: QP enlarged the stream (%d > %d)", ds, alg, len(qp), len(base))
			}
			rb, err := scdc.Decompress(base)
			if err != nil {
				t.Fatal(err)
			}
			rq, err := scdc.Decompress(qp)
			if err != nil {
				t.Fatal(err)
			}
			for i := range rb.Data {
				if rb.Data[i] != rq.Data[i] {
					t.Fatalf("%v/%v: decompressed data differs at %d", ds, alg, i)
					break
				}
			}
		}
	}
}

// TestMatrixCompressorOrdering documents the expected ratio ordering at a
// representative bound: the tuned interpolation compressors should not
// lose to MGARD (the paper's lowest-ratio base) on any dataset.
func TestMatrixCompressorOrdering(t *testing.T) {
	for _, ds := range allDatasets {
		f := datagen.MustGenerate(ds, 1, matrixDims, 9)
		size := func(alg scdc.Algorithm) int {
			s, err := scdc.Compress(f.Data, f.Dims(), scdc.Options{Algorithm: alg, RelativeBound: 1e-4, QP: scdc.DefaultQP()})
			if err != nil {
				t.Fatal(err)
			}
			return len(s)
		}
		mgard := size(scdc.MGARD)
		for _, alg := range []scdc.Algorithm{scdc.SZ3, scdc.QoZ, scdc.HPEZ} {
			if s := size(alg); s > mgard {
				t.Errorf("%v: %v (%d bytes) lost to MGARD (%d bytes)", ds, alg, s, mgard)
			}
		}
	}
}
