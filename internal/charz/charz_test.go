package charz

import (
	"strings"
	"testing"
)

func TestCentered(t *testing.T) {
	q := []int32{0, 100, 95, 105}
	c := Centered(q, 100)
	want := []int32{0, 0, -5, 5}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("centered[%d] = %d, want %d", i, c[i], want[i])
		}
	}
}

func seqCube(nx, ny, nz int) []int32 {
	q := make([]int32, nx*ny*nz)
	for i := range q {
		q[i] = int32(i)
	}
	return q
}

func TestSlice(t *testing.T) {
	dims := []int{3, 4, 5}
	q := seqCube(3, 4, 5)
	// Axis 0: plane (y,z) at x=1.
	p, rows, cols, err := Slice(q, dims, 0, 1)
	if err != nil || rows != 4 || cols != 5 {
		t.Fatalf("slice: %v %d %d", err, rows, cols)
	}
	if p[0] != 20 || p[19] != 39 {
		t.Fatalf("slice content: %d %d", p[0], p[19])
	}
	// Axis 2: plane (x,y) at z=3.
	p, rows, cols, err = Slice(q, dims, 2, 3)
	if err != nil || rows != 3 || cols != 4 {
		t.Fatalf("slice: %v %d %d", err, rows, cols)
	}
	if p[0] != 3 || p[1] != 8 {
		t.Fatalf("slice content: %d %d", p[0], p[1])
	}
	if _, _, _, err := Slice(q, dims, 3, 0); err == nil {
		t.Error("bad axis accepted")
	}
	if _, _, _, err := Slice(q, []int{3, 4}, 0, 0); err == nil {
		t.Error("2D dims accepted")
	}
}

func TestSubsample(t *testing.T) {
	plane := []int32{
		0, 1, 2, 3,
		4, 5, 6, 7,
		8, 9, 10, 11,
	}
	sub, nr, nc, err := Subsample(plane, 3, 4, 2, 2)
	if err != nil || nr != 2 || nc != 2 {
		t.Fatalf("subsample: %v %d %d", err, nr, nc)
	}
	if sub[0] != 0 || sub[1] != 2 || sub[2] != 8 || sub[3] != 10 {
		t.Fatalf("subsample content: %v", sub)
	}
	if _, _, _, err := Subsample(plane, 3, 4, 0, 1); err == nil {
		t.Error("zero stride accepted")
	}
}

func TestRegionAndEntropy(t *testing.T) {
	plane := make([]int32, 100)
	for i := 50; i < 100; i++ {
		plane[i] = int32(i)
	}
	r, rows, cols := Region(plane, 10, 10, 0, 5, 0, 10)
	if rows != 5 || cols != 10 || len(r) != 50 {
		t.Fatalf("region: %d %d %d", rows, cols, len(r))
	}
	if e := RegionalEntropy(plane, 10, 10, 0, 5, 0, 10); e != 0 {
		t.Fatalf("uniform region entropy = %g", e)
	}
	if e := RegionalEntropy(plane, 10, 10, 5, 10, 0, 10); e <= 0 {
		t.Fatalf("mixed region entropy = %g", e)
	}
	if r, _, _ := Region(plane, 10, 10, 8, 3, 0, 10); r != nil {
		t.Error("inverted region returned data")
	}
}

func TestSliceEntropies(t *testing.T) {
	dims := []int{4, 8, 8}
	q := make([]int32, 4*8*8)
	// Slice 2 along axis 0 is noisy, others constant.
	for i := 2 * 64; i < 3*64; i++ {
		q[i] = int32(i % 7)
	}
	es, err := SliceEntropies(q, dims, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 4 {
		t.Fatalf("len = %d", len(es))
	}
	if es[0] != 0 || es[2] <= 0 {
		t.Fatalf("entropies = %v", es)
	}
	if _, err := SliceEntropies(q, []int{4, 8}, 0, 1); err == nil {
		t.Error("2D accepted")
	}
}

func TestRenderPGM(t *testing.T) {
	plane := []int32{-8, 0, 8, 100}
	img := RenderPGM(plane, 2, 2, -8, 8)
	if !strings.HasPrefix(string(img), "P5\n2 2\n255\n") {
		t.Fatalf("bad header: %q", img[:12])
	}
	px := img[len(img)-4:]
	if px[0] != 0 || px[1] != 127 || px[2] != 255 || px[3] != 255 {
		t.Fatalf("pixels = %v", px)
	}
}

func TestRenderASCII(t *testing.T) {
	plane := []int32{-4, 4, 0, 0}
	s := RenderASCII(plane, 2, 2, -4, 4)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("ascii shape: %q", s)
	}
	if lines[0][0] != ' ' || lines[0][1] != '@' {
		t.Fatalf("ascii glyphs: %q", s)
	}
}
