// Package charz implements the quantization-index characterization of the
// paper's Section IV: per-slice entropy scans across the three coordinate
// planes (Figure 4), region extraction at the interpolation strides
// (Figures 3 and 5), regional entropy, and PGM/ASCII rendering of index
// maps for visual inspection of the clustering effect.
package charz

import (
	"errors"
	"fmt"
	"strings"

	"scdc/internal/entropy"
)

// ErrBadGeometry reports inconsistent slice geometry.
var ErrBadGeometry = errors.New("charz: bad geometry")

// Centered converts stored quantization symbols (offset by radius, 0 =
// unpredictable) to signed indices; unpredictable markers map to 0 so they
// do not dominate visualizations.
func Centered(q []int32, radius int32) []int32 {
	out := make([]int32, len(q))
	for i, s := range q {
		if s == 0 {
			out[i] = 0
			continue
		}
		out[i] = s - radius
	}
	return out
}

// Slice extracts the 2D plane of a 3D index array where axis is fixed at
// pos. Returns the plane in row-major order plus its (rows, cols).
func Slice(q []int32, dims []int, axis, pos int) ([]int32, int, int, error) {
	if len(dims) != 3 {
		return nil, 0, 0, fmt.Errorf("%w: need 3D dims, got %v", ErrBadGeometry, dims)
	}
	if axis < 0 || axis > 2 || pos < 0 || pos >= dims[axis] {
		return nil, 0, 0, fmt.Errorf("%w: axis=%d pos=%d for dims %v", ErrBadGeometry, axis, pos, dims)
	}
	var a, b int
	switch axis {
	case 0:
		a, b = 1, 2
	case 1:
		a, b = 0, 2
	default:
		a, b = 0, 1
	}
	strides := []int{dims[1] * dims[2], dims[2], 1}
	rows, cols := dims[a], dims[b]
	out := make([]int32, rows*cols)
	base := pos * strides[axis]
	k := 0
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			out[k] = q[base+i*strides[a]+j*strides[b]]
			k++
		}
	}
	return out, rows, cols, nil
}

// Subsample extracts the sub-lattice plane[r*s2][c*s1] — the stride view
// the paper uses to isolate one interpolation pass's indices (Figure 5
// plots Regions 1 and 2 at strides 1x2 and 2x2).
func Subsample(plane []int32, rows, cols, s2, s1 int) ([]int32, int, int, error) {
	if s1 < 1 || s2 < 1 || rows*cols != len(plane) {
		return nil, 0, 0, fmt.Errorf("%w: rows=%d cols=%d s=%dx%d", ErrBadGeometry, rows, cols, s2, s1)
	}
	nr := (rows + s2 - 1) / s2
	nc := (cols + s1 - 1) / s1
	out := make([]int32, 0, nr*nc)
	for r := 0; r < rows; r += s2 {
		for c := 0; c < cols; c += s1 {
			out = append(out, plane[r*cols+c])
		}
	}
	return out, nr, nc, nil
}

// Region crops the rectangle [r0:r1, c0:c1) from a plane (clipped).
func Region(plane []int32, rows, cols, r0, r1, c0, c1 int) ([]int32, int, int) {
	r0, r1 = clamp(r0, 0, rows), clamp(r1, 0, rows)
	c0, c1 = clamp(c0, 0, cols), clamp(c1, 0, cols)
	if r1 <= r0 || c1 <= c0 {
		return nil, 0, 0
	}
	out := make([]int32, 0, (r1-r0)*(c1-c0))
	for r := r0; r < r1; r++ {
		out = append(out, plane[r*cols+c0:r*cols+c1]...)
	}
	return out, r1 - r0, c1 - c0
}

// SliceEntropies computes, for every slice position along axis, the
// Shannon entropy of the slice's indices sub-sampled at the given in-plane
// stride — the paper's Figure 4 (stride 2 isolates the last interpolation
// level).
func SliceEntropies(q []int32, dims []int, axis, stride int) ([]float64, error) {
	if len(dims) != 3 {
		return nil, fmt.Errorf("%w: need 3D dims", ErrBadGeometry)
	}
	out := make([]float64, dims[axis])
	for pos := 0; pos < dims[axis]; pos++ {
		plane, rows, cols, err := Slice(q, dims, axis, pos)
		if err != nil {
			return nil, err
		}
		sub, _, _, err := Subsample(plane, rows, cols, stride, stride)
		if err != nil {
			return nil, err
		}
		out[pos] = entropy.Shannon(sub)
	}
	return out, nil
}

// RegionalEntropy is the entropy of a cropped region, the number the
// paper annotates above each Figure 5 subplot.
func RegionalEntropy(plane []int32, rows, cols, r0, r1, c0, c1 int) float64 {
	region, _, _ := Region(plane, rows, cols, r0, r1, c0, c1)
	return entropy.Shannon(region)
}

// RenderPGM renders an index plane as an 8-bit PGM image, mapping values
// in [lo, hi] linearly to [0, 255] (values outside clamp). The paper's
// Figures 3 and 5 use [-8, 8] and [-4, 4].
func RenderPGM(plane []int32, rows, cols int, lo, hi int32) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "P5\n%d %d\n255\n", cols, rows)
	out := []byte(b.String())
	span := float64(hi - lo)
	if span <= 0 {
		span = 1
	}
	for _, v := range plane {
		c := (float64(clamp32(v, lo, hi)-lo) / span) * 255
		out = append(out, byte(c))
	}
	return out
}

// RenderASCII renders an index plane as text, one glyph per sample, for
// terminal inspection of the clustering effect.
func RenderASCII(plane []int32, rows, cols int, lo, hi int32) string {
	glyphs := []byte(" .:-=+*#%@")
	span := float64(hi - lo)
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	b.Grow(rows * (cols + 1))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := clamp32(plane[r*cols+c], lo, hi)
			g := int(float64(v-lo) / span * float64(len(glyphs)-1))
			b.WriteByte(glyphs[g])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
