// Package rice implements an adaptive Golomb-Rice coder with a
// low-entropy run/escape sub-mode for quantization index streams — the
// second member of the entropy-coder family next to internal/huffman,
// modeled on the CCSDS-123.0-B-2 hybrid entropy coder (Golomb-power-of-2
// codes for high-entropy blocks, specialized run codes for the near-
// constant blocks QP-tuned index arrays are full of).
//
// Stream layout (rice/1):
//
//	0x00                 marker (shared zero-byte sub-format space; legacy
//	                     Huffman streams start with uvarint(hdrLen) >= 2)
//	0x02                 sub-format version (0x01 is sharded Huffman)
//	uvarint(n)           symbol count
//	varint(center)       reference symbol residuals are taken against
//	body                 MSB-first bit stream, zero-padded to a byte
//
// The body encodes blocks of 256 symbols (the last may be short). Each
// block opens with a 2-bit mode:
//
//	0  all-center: every symbol equals center, no payload
//	1  rice: 6-bit k, then one Golomb-Rice code per symbol of
//	   zigzag(sym-center) — k-bit remainder after a unary quotient; a
//	   quotient of 24 ones (no terminator) escapes to the raw 32-bit
//	   symbol
//	2  run/escape: 6-bit k, then alternating tokens: an Elias-gamma code
//	   of (run+1) counting center symbols, then (if the block is not yet
//	   full) one non-center literal coded as the Golomb-Rice code of
//	   zigzag(sym-center)-1, with the same 24-ones escape
//	3  invalid
//
// k values above 31 and gamma codes longer than value 257 are invalid, so
// hostile streams fail before any symbol is produced.
package rice

import (
	"encoding/binary"
	"errors"
	"fmt"
	mbits "math/bits"

	"scdc/internal/bitstream"
	"scdc/internal/entropy"
)

// ErrCorrupt reports a malformed rice stream.
var ErrCorrupt = errors.New("rice: corrupt stream")

const (
	// Marker opens every rice stream (shared with the sharded-Huffman
	// sub-format space).
	Marker = 0x00
	// Version is the rice sub-format version byte.
	Version = 0x02

	blockLen   = entropy.RiceBlock
	maxK       = entropy.RiceMaxK
	escapeQuot = entropy.RiceEscapeQuot

	// maxGammaZeros bounds run-length gamma codes: runs fit a block, so
	// run+1 <= 257 < 1<<9 needs at most 8 leading zeros.
	maxGammaZeros = 8
)

// IsRice reports whether data begins with the rice sub-format marker.
func IsRice(data []byte) bool {
	return len(data) >= 2 && data[0] == Marker && data[1] == Version
}

// --- encoding ---

// Encode compresses q into a self-describing rice stream.
func Encode(q []int32) []byte {
	return EncodeDist(q, entropy.Analyze(q))
}

// EncodeDist is Encode reusing a distribution already computed by
// entropy.Analyze(q), so the coder decision's histogram pass also supplies
// the center symbol. d must describe exactly q.
func EncodeDist(q []int32, d *entropy.Dist) []byte {
	center := d.Center()
	out := make([]byte, 0, len(q)/4+24)
	out = append(out, Marker, Version)
	out = binary.AppendUvarint(out, uint64(len(q)))
	out = binary.AppendVarint(out, int64(center))
	if len(q) == 0 {
		return out
	}
	w := bitstream.NewWriter(len(q)/4 + 16)
	var ms [blockLen]uint64
	for off := 0; off < len(q); off += blockLen {
		end := off + blockLen
		if end > len(q) {
			end = len(q)
		}
		encodeBlock(w, q[off:end], center, ms[:end-off])
	}
	return append(out, w.Bytes()...)
}

// encodeBlock prices the three modes on one block and emits the cheapest.
// ms is caller scratch of exactly len(block).
//
// The reslices up front restate that contract where the prove pass can
// see it — both views share one length afterwards, so the mapping and
// emit loops index each other check-free — and the literal buffer is
// written through a suffix cursor whose emptiness guard replaces the
// unprovable lits[nl] bound (the nobounds contract below; the guard
// never fires because a block yields at most blockLen literals).
//
//scdc:hot
//scdc:noalloc
//scdc:nobounds
func encodeBlock(w *bitstream.Writer, block []int32, center int32, ms []uint64) {
	n := len(block)
	if n > len(ms) {
		n = len(ms)
	}
	block = block[:n]
	ms = ms[:n]

	centers := 0
	for i, v := range block {
		m := entropy.ZigZag(int64(v) - int64(center))
		ms[i] = m
		if m == 0 {
			centers++
		}
	}
	if centers == len(block) {
		w.WriteBits(0, 2)
		return
	}

	k1, bits1 := bestK(ms)

	// Mode 2 pricing: gamma codes for the center runs, rice codes of m-1
	// for the literals.
	var lits [blockLen]uint64
	litTail := lits[:]
	runBits, run := 0, 0
	for _, m := range ms {
		if m == 0 {
			run++
			continue
		}
		runBits += gammaBits(uint(run) + 1)
		if len(litTail) > 0 {
			litTail[0] = m - 1
			litTail = litTail[1:]
		}
		run = 0
	}
	if run > 0 {
		runBits += gammaBits(uint(run) + 1)
	}
	// The cursor only shrinks, so this clamp never fires — it restates
	// len(litTail) <= blockLen for the prove pass.
	nl := blockLen - len(litTail)
	if nl < 0 {
		nl = 0
	}
	k2, litBits := bestK(lits[:nl])
	bits2 := runBits + litBits

	if bits2 < bits1 {
		w.WriteBits(2, 2)
		w.WriteBits(uint64(k2), 6)
		run = 0
		for i, m := range ms {
			if m == 0 {
				run++
				continue
			}
			emitGamma(w, uint(run)+1)
			emitRice(w, block[i], m-1, k2)
			run = 0
		}
		if run > 0 {
			emitGamma(w, uint(run)+1)
		}
		return
	}
	w.WriteBits(1, 2)
	w.WriteBits(uint64(k1), 6)
	for i, m := range ms {
		emitRice(w, block[i], m, k1)
	}
}

// emitRice writes the Golomb-Rice code of mapped value m at parameter k:
// a unary quotient, a zero terminator, and the k-bit remainder. Quotients
// of escapeQuot or more escape to escapeQuot ones (no terminator) followed
// by the raw 32-bit symbol.
func emitRice(w *bitstream.Writer, sym int32, m uint64, k uint) {
	q := m >> k
	if q < escapeQuot {
		// q ones, one zero, k remainder bits: at most 23+1+31 = 55 bits.
		w.WriteBits(((1<<q)-1)<<(k+1)|m&(1<<k-1), uint(q)+1+k)
		return
	}
	w.WriteBits(1<<escapeQuot-1, escapeQuot)
	w.WriteBits(uint64(uint32(sym)), 32)
}

// emitGamma writes the Elias-gamma code of v >= 1: z zeros then the z+1
// bits of v, where z = floor(log2 v).
//
//scdc:inline
func emitGamma(w *bitstream.Writer, v uint) {
	z := uint(mbits.Len(uint(v))) - 1
	w.WriteBits(uint64(v), 2*z+1)
}

// gammaBits prices emitGamma.
//
//scdc:inline
func gammaBits(v uint) int {
	return 2*(mbits.Len(uint(v))-1) + 1
}

// bestK picks the Rice parameter for vals: a mean-derived starting point,
// then exact pricing of the nearby candidates (ties to the smaller k, so
// the choice is deterministic). The pricing loops only range, so the
// whole pricer holds the nobounds contract alongside encodeBlock.
//
//scdc:hot
//scdc:noalloc
//scdc:nobounds
func bestK(vals []uint64) (uint, int) {
	if len(vals) == 0 {
		return 0, 0
	}
	var total uint64
	for _, m := range vals {
		total += m
	}
	k0 := 0
	for k0 < maxK && total>>uint(k0+1) >= uint64(len(vals)) {
		k0++
	}
	lo, hi := k0-2, k0+2
	if lo < 0 {
		lo = 0
	}
	if hi > maxK {
		hi = maxK
	}
	bestKv, bestBits := uint(lo), int(^uint(0)>>1)
	for k := lo; k <= hi; k++ {
		bits := 0
		for _, m := range vals {
			bits += entropy.RiceCodeBits(m, uint(k))
		}
		if bits < bestBits {
			bestBits = bits
			bestKv = uint(k)
		}
	}
	return bestKv, bestBits
}

// --- decoding ---

func unZigZag(m uint64) int64 { return int64(m>>1) ^ -int64(m&1) }

// Decode reverses Encode. All structural failures wrap ErrCorrupt, and
// hostile sample counts are rejected before the output is allocated.
func Decode(data []byte) ([]int32, error) {
	if !IsRice(data) {
		return nil, fmt.Errorf("%w: bad marker", ErrCorrupt)
	}
	data = data[2:]
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad sample count", ErrCorrupt)
	}
	data = data[k:]
	center64, k := binary.Varint(data)
	if k <= 0 || center64 < -1<<31 || center64 > 1<<31-1 {
		return nil, fmt.Errorf("%w: bad center symbol", ErrCorrupt)
	}
	body := data[k:]
	// Every 256-symbol block costs at least its 2 mode bits, so a body of
	// B bytes can describe at most 1024*B symbols; reject hostile sample
	// counts before allocating the output.
	if n > 1024*uint64(len(body)) {
		return nil, fmt.Errorf("%w: %d samples for %d-byte body", ErrCorrupt, n, len(body))
	}
	center := int32(center64)
	out := make([]int32, n)
	r := bitstream.NewReader(body)
	for off := 0; off < len(out); off += blockLen {
		end := off + blockLen
		if end > len(out) {
			end = len(out)
		}
		if err := decodeBlock(r, out[off:end], center); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeBlock decodes one block into out.
//
//scdc:hot
//scdc:nobounds
func decodeBlock(r *bitstream.Reader, out []int32, center int32) error {
	mode, err := r.ReadBits(2)
	if err != nil {
		return fmt.Errorf("%w: truncated block mode", ErrCorrupt)
	}
	switch mode {
	case 0:
		for i := range out {
			out[i] = center
		}
		return nil
	case 1:
		k, err := readK(r)
		if err != nil {
			return err
		}
		for i := range out {
			sym, err := readRice(r, center, k, 0)
			if err != nil {
				return err
			}
			out[i] = sym
		}
		return nil
	case 2:
		k, err := readK(r)
		if err != nil {
			return err
		}
		// The cursor is the unfilled suffix of out: run fills and literal
		// stores are then range/len-guarded slice ops the prove pass
		// eliminates, where the original index-plus-run bookkeeping kept
		// a bounds check on every store.
		tail := out
		for len(tail) > 0 {
			run, err := readGamma(r)
			if err != nil {
				return err
			}
			n := uint(run)
			if n > uint(len(tail)) {
				return fmt.Errorf("%w: run of %d overflows block", ErrCorrupt, run)
			}
			fill := tail[:n]
			for j := range fill {
				fill[j] = center
			}
			tail = tail[n:]
			if len(tail) == 0 {
				break
			}
			sym, err := readRice(r, center, k, 1)
			if err != nil {
				return err
			}
			tail[0] = sym
			tail = tail[1:]
		}
		return nil
	default:
		return fmt.Errorf("%w: invalid block mode %d", ErrCorrupt, mode)
	}
}

// readK reads the 6-bit Rice parameter; values above maxK are invalid.
func readK(r *bitstream.Reader) (uint, error) {
	k, err := r.ReadBits(6)
	if err != nil {
		return 0, fmt.Errorf("%w: truncated rice parameter", ErrCorrupt)
	}
	if k > maxK {
		return 0, fmt.Errorf("%w: oversized rice parameter %d", ErrCorrupt, k)
	}
	return uint(k), nil
}

// readRice decodes one Golomb-Rice code: the mapped value is offset by
// bias (0 in rice mode, 1 for run-mode literals) before unmapping against
// center. An escapeQuot-ones quotient yields the raw 32-bit symbol.
func readRice(r *bitstream.Reader, center int32, k uint, bias uint64) (int32, error) {
	// One peek covers the longest legal unary prefix (escapeQuot = 24
	// ones); bits past the end read as zero, so a truncated quotient
	// surfaces as a Skip past the end.
	q := uint(mbits.LeadingZeros32(^uint32(r.PeekBits(32))))
	if q >= escapeQuot {
		if err := r.Skip(escapeQuot); err != nil {
			return 0, fmt.Errorf("%w: truncated escape", ErrCorrupt)
		}
		raw, err := r.ReadBits(32)
		if err != nil {
			return 0, fmt.Errorf("%w: truncated escape literal", ErrCorrupt)
		}
		return int32(uint32(raw)), nil
	}
	if err := r.Skip(q + 1); err != nil {
		return 0, fmt.Errorf("%w: truncated quotient", ErrCorrupt)
	}
	low, err := r.ReadBits(k)
	if err != nil {
		return 0, fmt.Errorf("%w: truncated remainder", ErrCorrupt)
	}
	m := (uint64(q)<<k | low) + bias
	return int32(int64(center) + unZigZag(m)), nil
}

// readGamma decodes one Elias-gamma run code, returning the run length
// (value-1). Codes needing more than maxGammaZeros zeros cannot describe
// a legal run and are rejected.
func readGamma(r *bitstream.Reader) (int, error) {
	z := uint(mbits.LeadingZeros32(uint32(r.PeekBits(32))))
	if z > maxGammaZeros {
		return 0, fmt.Errorf("%w: oversized run code", ErrCorrupt)
	}
	if err := r.Skip(z + 1); err != nil {
		return 0, fmt.Errorf("%w: truncated run code", ErrCorrupt)
	}
	rest, err := r.ReadBits(z)
	if err != nil {
		return 0, fmt.Errorf("%w: truncated run code", ErrCorrupt)
	}
	return int((uint64(1)<<z | rest) - 1), nil
}
