package rice

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"math/rand"
	"testing"

	"scdc/internal/bitstream"
	"scdc/internal/entropy"
)

func roundTrip(t *testing.T, name string, q []int32) []byte {
	t.Helper()
	enc := Encode(q)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if len(dec) != len(q) {
		t.Fatalf("%s: decoded %d symbols, want %d", name, len(dec), len(q))
	}
	for i := range q {
		if dec[i] != q[i] {
			t.Fatalf("%s: symbol %d: got %d, want %d", name, i, dec[i], q[i])
		}
	}
	return enc
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))

	constant := make([]int32, 5000)
	for i := range constant {
		constant[i] = 32768
	}

	nearConstant := make([]int32, 5000)
	for i := range nearConstant {
		nearConstant[i] = 100
		if i%37 == 0 {
			nearConstant[i] = 100 + int32(i%5) - 2
		}
	}

	geometric := make([]int32, 5000)
	for i := range geometric {
		d := int32(rng.ExpFloat64() * 20)
		if rng.Intn(2) == 0 {
			d = -d
		}
		geometric[i] = 1000 + d
	}

	wide := make([]int32, 3000)
	for i := range wide {
		wide[i] = rng.Int31() - 1<<30 // forces escapes
	}

	extremes := []int32{-1 << 31, 1<<31 - 1, 0, -1, 1, -1 << 31, 1<<31 - 1}

	cases := map[string][]int32{
		"empty":        {},
		"single":       {-7},
		"constant":     constant,
		"nearConstant": nearConstant,
		"geometric":    geometric,
		"wide":         wide,
		"extremes":     extremes,
		"partialBlock": geometric[:257],
		"oneBlock":     geometric[:256],
	}
	for name, q := range cases {
		roundTrip(t, name, q)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	q := make([]int32, 10000)
	rng := rand.New(rand.NewSource(7))
	for i := range q {
		q[i] = int32(rng.Intn(9)) - 4
	}
	a := Encode(q)
	b := EncodeDist(q, entropy.Analyze(q))
	if string(a) != string(b) {
		t.Fatal("Encode and EncodeDist disagree")
	}
	if string(a) != string(Encode(q)) {
		t.Fatal("Encode is not deterministic")
	}
}

// TestGoldenStream pins the byte format: a fixed input must encode to a
// fixed digest, so format drift cannot slip through as a matched pair of
// encoder/decoder changes.
func TestGoldenStream(t *testing.T) {
	q := make([]int32, 2048)
	for i := range q {
		switch {
		case i%5 == 0:
			q[i] = 17 + int32(i%3)
		case i%31 == 0:
			q[i] = -40000 // occasional escape
		default:
			q[i] = 17
		}
	}
	enc := Encode(q)
	const want = "88f631c4727b21fab866861d82ddc03dce1c4345a97dcba863af28a56744b397"
	got := hex.EncodeToString(func() []byte { s := sha256.Sum256(enc); return s[:] }())
	if got != want {
		t.Fatalf("golden rice stream drifted:\n got %s\nwant %s\n(len=%d)", got, want, len(enc))
	}
	roundTrip(t, "golden", q)
}

func TestIsRice(t *testing.T) {
	if !IsRice(Encode([]int32{1, 2, 3})) {
		t.Fatal("encoded stream not recognized")
	}
	for _, bad := range [][]byte{nil, {0x00}, {0x00, 0x01}, {0x01, 0x02}, {0x05}} {
		if IsRice(bad) {
			t.Fatalf("IsRice(%x) = true", bad)
		}
	}
}

// hostileStream builds a syntactically valid prefix (marker, version, n,
// center) followed by a hand-authored bit body.
func hostileStream(n uint64, center int64, bits func(w *bitstream.Writer)) []byte {
	out := []byte{Marker, Version}
	out = binary.AppendUvarint(out, n)
	out = binary.AppendVarint(out, center)
	w := bitstream.NewWriter(16)
	bits(w)
	return append(out, w.Bytes()...)
}

func TestHostileStreams(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"markerOnly":       {Marker},
		"truncatedCount":   {Marker, Version},
		"danglingUvarint":  {Marker, Version, 0x80},
		"truncatedCenter":  {Marker, Version, 0x04},
		"danglingCenter":   {Marker, Version, 0x04, 0x80},
		"hugeCenter":       append(binary.AppendVarint([]byte{Marker, Version, 0x04}, 1<<40), 0xFF),
		"countExceedsBody": append(binary.AppendUvarint([]byte{Marker, Version}, 1<<40), 0x00),
		// A full first block (mode 1, k=0, 256 one-bit codes) fills the
		// body to an exact byte boundary, so the second block's mode bits
		// land past the end rather than in zero padding.
		"truncatedMode": hostileStream(512, 0, func(w *bitstream.Writer) {
			w.WriteBits(1, 2)
			w.WriteBits(0, 6)
			for i := 0; i < 256; i++ {
				w.WriteBit(0)
			}
		}),
		"invalidMode": hostileStream(4, 0, func(w *bitstream.Writer) {
			w.WriteBits(3, 2)
		}),
		"oversizedK": hostileStream(4, 0, func(w *bitstream.Writer) {
			w.WriteBits(1, 2)
			w.WriteBits(63, 6) // k > 31
		}),
		"oversizedKRunMode": hostileStream(4, 0, func(w *bitstream.Writer) {
			w.WriteBits(2, 2)
			w.WriteBits(32, 6)
		}),
		"lyingRunLength": hostileStream(10, 0, func(w *bitstream.Writer) {
			w.WriteBits(2, 2)
			w.WriteBits(0, 6)
			// gamma(301): run of 300 into a 10-symbol block.
			w.WriteBits(301, 2*8+1)
		}),
		"oversizedRunCode": hostileStream(10, 0, func(w *bitstream.Writer) {
			w.WriteBits(2, 2)
			w.WriteBits(0, 6)
			w.WriteBits(1, 2*9+1) // 9 leading zeros: value 512 > 257
		}),
		"truncatedQuotient": hostileStream(256, 0, func(w *bitstream.Writer) {
			w.WriteBits(1, 2)
			w.WriteBits(0, 6)
			w.WriteBits(0xFF, 8) // unary runs off the end of the body
		}),
		"truncatedEscape": hostileStream(4, 0, func(w *bitstream.Writer) {
			w.WriteBits(1, 2)
			w.WriteBits(0, 6)
			w.WriteBits(1<<escapeQuot-1, escapeQuot) // escape, no literal
		}),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// TestHostileCountRejectedBeforeAlloc: an absurd symbol count over a tiny
// body must be rejected by the pre-allocation cap (alloccap discipline),
// i.e. fail fast rather than attempt the allocation.
func TestHostileCountRejectedBeforeAlloc(t *testing.T) {
	data := binary.AppendUvarint([]byte{Marker, Version}, 1<<50)
	data = binary.AppendVarint(data, 0)
	data = append(data, 0xAA, 0xBB) // 2-byte body, cap allows 2048 symbols
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func FuzzRice(f *testing.F) {
	near := make([]int32, 3000)
	for i := range near {
		near[i] = 5
		if i%11 == 0 {
			near[i] = int32(i % 7)
		}
	}
	f.Add(Encode(near), []byte{1, 2, 3})
	f.Add(Encode(nil), []byte{})
	f.Add([]byte{Marker, Version, 0x04}, []byte{0xFF, 0x00, 0xFF})
	f.Fuzz(func(t *testing.T, stream, raw []byte) {
		// Arbitrary bytes through Decode must error or decode, never panic.
		if syms, err := Decode(stream); err == nil {
			if _, err := Decode(Encode(syms)); err != nil {
				t.Fatalf("re-encode of decoded stream failed: %v", err)
			}
		}
		// Arbitrary symbol streams must round-trip exactly.
		q := make([]int32, len(raw))
		for i, b := range raw {
			q[i] = int32(b)
			if b%5 == 0 {
				q[i] = int32(b)*131071 - 1<<24
			}
		}
		enc := Encode(q)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if len(dec) != len(q) {
			t.Fatalf("round trip length %d, want %d", len(dec), len(q))
		}
		for i := range q {
			if dec[i] != q[i] {
				t.Fatalf("round trip symbol %d: %d, want %d", i, dec[i], q[i])
			}
		}
	})
}
