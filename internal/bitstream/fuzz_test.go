package bitstream

import (
	"testing"
)

// FuzzBitReader drives a Reader over arbitrary bytes with an arbitrary
// op script (read/peek/skip of arbitrary widths) and checks the
// bookkeeping invariants: BitsRead+Remaining is conserved, reads past the
// end error instead of panicking, and PeekBits agrees with the ReadBits
// that follows it.
func FuzzBitReader(f *testing.F) {
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, []byte{1, 8, 3, 64, 0})
	f.Add([]byte{}, []byte{1, 1, 1})
	f.Add([]byte{0xff}, []byte{32, 32})
	f.Fuzz(func(t *testing.T, buf []byte, script []byte) {
		r := NewReader(buf)
		total := len(buf) * 8
		for i, op := range script {
			if r.BitsRead()+r.Remaining() != total {
				t.Fatalf("op %d: BitsRead %d + Remaining %d != %d",
					i, r.BitsRead(), r.Remaining(), total)
			}
			n := uint(op % 65)
			before := r.BitsRead()
			switch op % 4 {
			case 0: // ReadBit
				_, err := r.ReadBit()
				if (err != nil) != (r.Remaining() == 0 && before == r.BitsRead()) {
					// ReadBit errors iff no bits remain; on error the cursor
					// must not move.
					if err != nil && r.BitsRead() != before {
						t.Fatalf("op %d: cursor moved on error", i)
					}
				}
				if err == nil && r.BitsRead() != before+1 {
					t.Fatalf("op %d: ReadBit consumed %d bits", i, r.BitsRead()-before)
				}
			case 1: // ReadBits
				_, err := r.ReadBits(n)
				if err == nil && r.BitsRead() != before+int(n) {
					t.Fatalf("op %d: ReadBits(%d) consumed %d bits", i, n, r.BitsRead()-before)
				}
				if err != nil && before+int(n) <= total {
					t.Fatalf("op %d: ReadBits(%d) errored with %d bits available",
						i, n, total-before)
				}
			case 2: // PeekBits must not consume, and must match the next read
				if n > 32 {
					n = 32
				}
				peeked := r.PeekBits(n)
				if r.BitsRead() != before {
					t.Fatalf("op %d: PeekBits consumed bits", i)
				}
				if int(n) <= r.Remaining() {
					got, err := r.ReadBits(n)
					if err != nil {
						t.Fatalf("op %d: read after peek failed: %v", i, err)
					}
					if got != peeked {
						t.Fatalf("op %d: peek %x != read %x", i, peeked, got)
					}
				}
			case 3: // Skip
				err := r.Skip(n)
				if err == nil && r.BitsRead() != before+int(n) {
					t.Fatalf("op %d: Skip(%d) consumed %d bits", i, n, r.BitsRead()-before)
				}
				if err != nil && before+int(n) <= total {
					t.Fatalf("op %d: Skip(%d) errored with %d bits available",
						i, n, total-before)
				}
			}
		}
	})
}

// FuzzBitWriterReader round-trips an arbitrary write script through
// Writer then reads it back bit-exactly, covering zero-length writes and
// non-byte-aligned (odd tail) streams.
func FuzzBitWriterReader(f *testing.F) {
	f.Add([]byte{3, 7, 64, 1})
	f.Add([]byte{})
	f.Add([]byte{63, 63, 63})
	f.Fuzz(func(t *testing.T, script []byte) {
		w := NewWriter(0)
		type item struct {
			v uint64
			n uint
		}
		var items []item
		acc := uint64(88172645463325252)
		bits := 0
		for _, op := range script {
			n := uint(op % 65)
			acc ^= acc << 13
			acc ^= acc >> 7
			acc ^= acc << 17
			v := acc
			if n < 64 {
				v &= (1 << n) - 1
			}
			w.WriteBits(v, n)
			items = append(items, item{v, n})
			bits += int(n)
		}
		if w.Len() != bits {
			t.Fatalf("Len %d, want %d", w.Len(), bits)
		}
		out := w.Bytes()
		if len(out) != (bits+7)/8 {
			t.Fatalf("%d bytes for %d bits", len(out), bits)
		}
		r := NewReader(out)
		for i, it := range items {
			got, err := r.ReadBits(it.n)
			if err != nil {
				t.Fatalf("item %d: %v", i, err)
			}
			if got != it.v {
				t.Fatalf("item %d: %x, want %x (n=%d)", i, got, it.v, it.n)
			}
		}
	})
}
