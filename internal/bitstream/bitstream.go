// Package bitstream implements MSB-first bit-level readers and writers used
// by the Huffman coder and the embedded bit-plane coders (ZFP-, SPERR- and
// TTHRESH-like comparators).
package bitstream

import (
	"errors"
)

// ErrShortStream is returned when a reader runs out of bits.
var ErrShortStream = errors.New("bitstream: unexpected end of stream")

// Writer accumulates bits MSB-first into a byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbit
	nbit uint   // number of pending bits in cur (0..63)
}

// NewWriter returns a Writer with capacity hint n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | uint64(b&1)
	w.nbit++
	if w.nbit == 64 {
		w.flush64()
	}
}

// WriteBits appends the low n bits of v, most significant first. n must be
// in [0, 57] for a single call; larger values are split.
func (w *Writer) WriteBits(v uint64, n uint) {
	for n > 32 {
		w.WriteBits(v>>(n-32), 32)
		n -= 32
		v &= (1 << n) - 1
	}
	if n == 0 {
		return
	}
	space := 64 - w.nbit
	if n <= space {
		w.cur = w.cur<<n | (v & ((1 << n) - 1))
		w.nbit += n
		if w.nbit == 64 {
			w.flush64()
		}
		return
	}
	hi := n - space
	w.cur = w.cur<<space | (v>>hi)&((1<<space)-1)
	w.nbit = 64
	w.flush64()
	w.cur = v & ((1 << hi) - 1)
	w.nbit = hi
}

func (w *Writer) flush64() {
	for i := 0; i < 8; i++ {
		w.buf = append(w.buf, byte(w.cur>>(56-8*uint(i))))
	}
	w.cur, w.nbit = 0, 0
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return len(w.buf)*8 + int(w.nbit) }

// Bytes finalizes the stream, padding the last byte with zero bits, and
// returns the backing buffer. The writer remains usable; further writes
// append after the padding, so call Bytes only once per stream.
func (w *Writer) Bytes() []byte {
	if w.nbit > 0 {
		pad := (8 - w.nbit%8) % 8
		w.cur <<= pad
		w.nbit += pad
		for w.nbit >= 8 {
			w.nbit -= 8
			w.buf = append(w.buf, byte(w.cur>>w.nbit))
		}
		w.cur = 0
	}
	return w.buf
}

// Reset clears the writer for reuse, keeping the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nbit = 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int  // byte position
	bit uint // bit position within buf[pos], 0 = MSB
}

// NewReader returns a Reader over buf. The reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrShortStream
	}
	b := uint(r.buf[r.pos]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

// ReadBits reads n bits (n ≤ 64) most significant first.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for n > 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrShortStream
		}
		avail := 8 - r.bit
		take := n
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[r.pos]>>(avail-take)) & ((1 << take) - 1)
		v = v<<take | chunk
		r.bit += take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
		n -= take
	}
	return v, nil
}

// PeekBits returns the next n bits (n <= 32) without consuming them,
// MSB-first. Bits past the end of the stream read as zero; combined with
// Skip this supports table-driven decoders that over-peek near the end.
func (r *Reader) PeekBits(n uint) uint64 {
	var v uint64
	pos, bit := r.pos, r.bit
	for n > 0 {
		if pos >= len(r.buf) {
			v <<= n
			break
		}
		avail := 8 - bit
		take := n
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[pos]>>(avail-take)) & ((1 << take) - 1)
		v = v<<take | chunk
		bit += take
		if bit == 8 {
			bit = 0
			pos++
		}
		n -= take
	}
	return v
}

// Skip consumes n bits. Skipping past the end returns ErrShortStream.
func (r *Reader) Skip(n uint) error {
	total := r.pos*8 + int(r.bit) + int(n)
	if total > len(r.buf)*8 {
		return ErrShortStream
	}
	r.pos = total / 8
	r.bit = uint(total % 8)
	return nil
}

// BitsRead returns the number of bits consumed so far.
func (r *Reader) BitsRead() int { return r.pos*8 + int(r.bit) }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.BitsRead() }
