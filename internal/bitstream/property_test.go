package bitstream

import (
	"math/rand"
	"testing"
)

// TestPropertyWriterReaderRoundTrip drives many random write scripts —
// including zero-width writes and streams whose total length is not a
// multiple of 8 — and requires a bit-exact read-back plus correct length
// bookkeeping on both sides.
func TestPropertyWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		type item struct {
			v uint64
			n uint
		}
		var items []item
		w := NewWriter(0)
		bits := 0
		for k := rng.Intn(40); k > 0; k-- {
			n := uint(rng.Intn(65)) // 0..64, zero-width included
			v := rng.Uint64()
			if n < 64 {
				v &= (1 << n) - 1
			}
			w.WriteBits(v, n)
			items = append(items, item{v, n})
			bits += int(n)
		}
		if w.Len() != bits {
			t.Fatalf("iter %d: Len %d, want %d", iter, w.Len(), bits)
		}
		out := w.Bytes()
		if len(out) != (bits+7)/8 {
			t.Fatalf("iter %d: %d bytes for %d bits", iter, len(out), bits)
		}
		// Bits pack MSB-first, so an odd tail leaves the low bits of the
		// final byte as padding, which must be zero for deterministic
		// byte-for-byte streams.
		if tail := bits % 8; tail != 0 {
			if pad := out[len(out)-1] & (1<<(8-tail) - 1); pad != 0 {
				t.Fatalf("iter %d: nonzero padding in final byte %08b (tail %d bits)",
					iter, out[len(out)-1], tail)
			}
		}
		r := NewReader(out)
		for i, it := range items {
			got, err := r.ReadBits(it.n)
			if err != nil {
				t.Fatalf("iter %d item %d: %v", iter, i, err)
			}
			if got != it.v {
				t.Fatalf("iter %d item %d: %x, want %x (n=%d)", iter, i, got, it.v, it.n)
			}
		}
		if r.Remaining() >= 8 {
			t.Fatalf("iter %d: %d unread bits after full read-back", iter, r.Remaining())
		}
	}
}

// TestPropertyZeroLength: an empty writer yields an empty stream, and a
// reader over it errors on any read while keeping its bookkeeping sane.
func TestPropertyZeroLength(t *testing.T) {
	w := NewWriter(0)
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("empty writer: Len=%d bytes=%d", w.Len(), len(w.Bytes()))
	}
	w.WriteBits(0, 0) // zero-width write is a no-op
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatal("zero-width write changed the stream")
	}
	r := NewReader(nil)
	if r.Remaining() != 0 || r.BitsRead() != 0 {
		t.Fatalf("empty reader: Remaining=%d BitsRead=%d", r.Remaining(), r.BitsRead())
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("ReadBit on empty stream succeeded")
	}
	if _, err := r.ReadBits(1); err == nil {
		t.Fatal("ReadBits on empty stream succeeded")
	}
	if v, err := r.ReadBits(0); err != nil || v != 0 {
		t.Fatalf("zero-width read on empty stream: v=%d err=%v", v, err)
	}
	if err := r.Skip(0); err != nil {
		t.Fatalf("zero-width skip on empty stream: %v", err)
	}
}
