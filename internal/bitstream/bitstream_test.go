package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleBits(t *testing.T) {
	w := NewWriter(4)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type item struct {
		v uint64
		n uint
	}
	items := make([]item, 2000)
	w := NewWriter(0)
	for i := range items {
		n := uint(rng.Intn(64) + 1)
		v := rng.Uint64() & ((1 << n) - 1)
		if n == 64 {
			v = rng.Uint64()
		}
		items[i] = item{v, n}
		w.WriteBits(v, n)
	}
	r := NewReader(w.Bytes())
	for i, it := range items {
		got, err := r.ReadBits(it.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != it.v {
			t.Fatalf("item %d: got %x want %x (n=%d)", i, got, it.v, it.n)
		}
	}
}

func TestLen(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x3, 2)
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
	w.WriteBits(0, 70)
	if w.Len() != 72 {
		t.Fatalf("len = %d", w.Len())
	}
}

func TestShortStream(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrShortStream {
		t.Fatalf("err = %v", err)
	}
	r2 := NewReader([]byte{0xff})
	if _, err := r2.ReadBits(9); err != ErrShortStream {
		t.Fatalf("err = %v", err)
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xabcd, 16)
	w.Reset()
	w.WriteBits(0x12, 8)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0x12 {
		t.Fatalf("bytes = %x", b)
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0, 0})
	if r.Remaining() != 24 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 19 || r.BitsRead() != 5 {
		t.Fatalf("remaining=%d read=%d", r.Remaining(), r.BitsRead())
	}
}

// TestQuickRoundTrip property: any sequence of (value, width) writes reads
// back identically.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewWriter(0)
		want := make([]uint64, n)
		ns := make([]uint, n)
		for i := 0; i < n; i++ {
			ns[i] = uint(widths[i]%64) + 1
			want[i] = vals[i]
			if ns[i] < 64 {
				want[i] &= (1 << ns[i]) - 1
			}
			w.WriteBits(want[i], ns[i])
		}
		r := NewReader(w.Bytes())
		for i := 0; i < n; i++ {
			got, err := r.ReadBits(ns[i])
			if err != nil || got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekAndSkip(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b1011001110001111, 16)
	r := NewReader(w.Bytes())
	if got := r.PeekBits(4); got != 0b1011 {
		t.Fatalf("peek4 = %b", got)
	}
	// Peek does not consume.
	if got := r.PeekBits(8); got != 0b10110011 {
		t.Fatalf("peek8 = %b", got)
	}
	if err := r.Skip(4); err != nil {
		t.Fatal(err)
	}
	if got := r.PeekBits(4); got != 0b0011 {
		t.Fatalf("after skip peek4 = %b", got)
	}
	if got, _ := r.ReadBits(12); got != 0b001110001111 {
		t.Fatalf("read12 = %b", got)
	}
	// Peek past end reads zeros; skip past end errors.
	if got := r.PeekBits(8); got != 0 {
		t.Fatalf("past-end peek = %b", got)
	}
	if err := r.Skip(1); err != ErrShortStream {
		t.Fatalf("past-end skip err = %v", err)
	}
}

func TestPeekStraddlesBytes(t *testing.T) {
	r := NewReader([]byte{0xAB, 0xCD, 0xEF})
	if err := r.Skip(5); err != nil {
		t.Fatal(err)
	}
	if got := r.PeekBits(13); got != (0xABCDE>>2)&0x1FFF {
		t.Fatalf("straddle peek = %x", got)
	}
}
